#include "ssd/sharded_device.h"

#include <cassert>
#include <utility>

#include "blocklayer/request.h"

namespace postblock::ssd {

namespace {

inline std::uint64_t Mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

inline std::uint64_t SplitMix(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t HistDigest(std::uint64_t h, const Histogram& hist) {
  h = Mix(h, hist.count());
  h = Mix(h, static_cast<std::uint64_t>(hist.Sum()));
  h = Mix(h, hist.min());
  h = Mix(h, hist.max());
  h = Mix(h, hist.P50());
  h = Mix(h, hist.P99());
  return h;
}

std::uint64_t CountersDigest(std::uint64_t h, const Counters& counters) {
  for (const auto& [name, value] : counters.All()) {
    for (char c : name) h = Mix(h, static_cast<std::uint64_t>(c));
    h = Mix(h, value);
  }
  return h;
}

std::uint64_t RingDigest(std::uint64_t h, const trace::Tracer& t) {
  h = Mix(h, t.total_recorded());
  t.ForEach([&h](const trace::TraceEvent& e) {
    h = Mix(h, e.start);
    h = Mix(h, e.end);
    h = Mix(h, e.span);
    h = Mix(h, e.arg);
    h = Mix(h, (static_cast<std::uint64_t>(e.track) << 16) |
                   (static_cast<std::uint64_t>(e.stage) << 8) |
                   static_cast<std::uint64_t>(e.origin));
  });
  return h;
}

}  // namespace

ShardedDeviceSim::ShardedDeviceSim(const Config& config,
                                   const ShardedDeviceRun& run)
    : config_(config),
      run_(run),
      plan_(ShardPlan::FromConfig(config, run.seam_coalesce_ns)),
      rng_(run.seed) {
  assert(config_.metrics == nullptr &&
         "metrics sampling is unsupported on the sharded device");
  sim::ShardedConfig ec;
  ec.shards = plan_.num_shards;
  ec.workers = run_.workers;
  ec.lookahead = plan_.Lookahead();
  ec.fingerprint = true;
  engine_ = std::make_unique<sim::ShardedEngine>(ec);
  router_ = std::make_unique<ShardRouter>(engine_.get(), plan_);
  std::vector<trace::Tracer*> channel_rings;
  if (run_.tracing) {
    // One ring per channel shard plus the controller's shared ring;
    // modest capacity — the digest covers retained events + totals.
    rings_.reserve(config_.geometry.channels + 1);
    for (std::uint32_t c = 0; c <= config_.geometry.channels; ++c) {
      rings_.push_back(std::make_unique<trace::Tracer>(1 << 12));
      rings_.back()->set_enabled(true);
    }
    config_.tracer = rings_.back().get();
    for (std::uint32_t c = 0; c < config_.geometry.channels; ++c) {
      channel_rings.push_back(rings_[c].get());
    }
  }
  device_ = std::make_unique<Device>(router_.get(), config_,
                                     channel_rings);
  const std::uint64_t user = device_->num_blocks();
  fill_pages_ = static_cast<std::uint64_t>(
      static_cast<double>(user) * run_.fill_fraction);
  if (fill_pages_ == 0) fill_pages_ = 1;
  if (fill_pages_ > user) fill_pages_ = user;
  // Kick off the closed loop as the first controller-shard event.
  router_->controller_sim()->Schedule(0, [this] { Pump(); });
}

void ShardedDeviceSim::Pump() {
  while (inflight_ < run_.queue_depth &&
         (fill_issued_ < fill_pages_ || main_issued_ < run_.total_ios)) {
    Issue();
  }
}

void ShardedDeviceSim::Issue() {
  blocklayer::IoRequest req;
  if (fill_issued_ < fill_pages_) {
    // Precondition: sequential fill so the main phase overwrites live
    // data (GC relocation traffic crosses the seam, not just host IO).
    req.op = blocklayer::IoOp::kWrite;
    req.lba = fill_issued_++;
    req.tokens.assign(1, token_++);
  } else {
    ++main_issued_;
    const bool write =
        SplitMix(rng_) % 100 < run_.write_percent;
    const Lba lba = SplitMix(rng_) % fill_pages_;
    if (write) {
      req.op = blocklayer::IoOp::kWrite;
      req.lba = lba;
      req.tokens.assign(1, token_++);
    } else {
      req.op = blocklayer::IoOp::kRead;
      req.lba = lba;
    }
  }
  req.nblocks = 1;
  ++inflight_;
  req.on_complete = [this](const blocklayer::IoResult& res) {
    OnDone(res.status);
  };
  device_->Submit(std::move(req));
}

void ShardedDeviceSim::OnDone(const Status& st) {
  --inflight_;
  ++done_;
  if (!st.ok()) ++errors_;
  Pump();
}

SimTime ShardedDeviceSim::Run() {
  const SimTime end = engine_->Run();
  assert(inflight_ == 0);
  assert(done_ == fill_pages_ + run_.total_ios);
  return end;
}

std::uint64_t ShardedDeviceSim::ModelFingerprint() const {
  std::uint64_t h = 0x243f6a8885a308d3ull;
  h = CountersDigest(h, device_->counters());
  h = CountersDigest(h, device_->controller()->counters());
  h = HistDigest(h, device_->read_latency());
  h = HistDigest(h, device_->write_latency());
  h = HistDigest(h, device_->controller()->read_latency());
  h = HistDigest(h, device_->controller()->program_latency());
  h = HistDigest(h, device_->controller()->erase_latency());
  double wa = device_->WriteAmplification();
  std::uint64_t wa_bits = 0;
  static_assert(sizeof(wa) == sizeof(wa_bits));
  __builtin_memcpy(&wa_bits, &wa, sizeof(wa_bits));
  h = Mix(h, wa_bits);
  h = Mix(h, device_->controller()->GcStallReadNs());
  h = Mix(h, device_->controller()->GcStallWriteNs());
  h = Mix(h, device_->controller()->read_retries());
  h = Mix(h, device_->controller()->blocks_retired());
  h = Mix(h, done_);
  h = Mix(h, errors_);
  h = Mix(h, engine_->Now());
  for (const auto& ring : rings_) h = RingDigest(h, *ring);
  return h;
}

std::uint64_t ShardedDeviceSim::CombinedFingerprint() const {
  return Mix(ModelFingerprint(), engine_->Fingerprint());
}

}  // namespace postblock::ssd
