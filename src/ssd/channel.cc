#include "ssd/channel.h"

namespace postblock::ssd {

Channel::Channel(sim::Simulator* sim, std::uint32_t index,
                 const flash::Timing& timing, std::uint32_t page_bytes)
    : index_(index),
      transfer_ns_(timing.TransferNs(page_bytes)),
      cmd_ns_(timing.cmd_ns),
      bus_(sim, "channel-" + std::to_string(index)) {}

void Channel::Transfer(sim::InplaceCallback done) {
  bus_.UseFor(transfer_ns_, std::move(done));
}

void Channel::Command(sim::InplaceCallback done) {
  bus_.UseFor(cmd_ns_, std::move(done));
}

}  // namespace postblock::ssd
