#include "ssd/channel.h"

namespace postblock::ssd {

Channel::Channel(sim::Simulator* sim, std::uint32_t index,
                 const flash::Timing& timing, std::uint32_t page_bytes)
    : index_(index),
      transfer_ns_(timing.TransferNs(page_bytes)),
      cmd_ns_(timing.cmd_ns),
      sim_(sim),
      bus_(sim, "channel-" + std::to_string(index)) {}

void Channel::set_tracer(trace::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) {
    track_ = tracer_->RegisterTrack(trace::kPidFlash,
                                    "channel-" + std::to_string(index_));
  }
}

Channel::BusOp* Channel::AcquireBusOp() {
  if (!bus_op_free_.empty()) {
    BusOp* op = bus_op_free_.back();
    bus_op_free_.pop_back();
    return op;
  }
  bus_ops_.push_back(std::make_unique<BusOp>());
  bus_ops_.back()->ch = this;
  return bus_ops_.back().get();
}

void Channel::ReleaseBusOp(BusOp* op) {
  op->done = sim::InplaceCallback();
  bus_op_free_.push_back(op);
}

void Channel::TimedUse(SimTime duration, trace::Ctx ctx,
                       sim::InplaceCallback done) {
  BusOp* op = AcquireBusOp();
  op->duration = duration;
  op->ctx = ctx;
  op->done = std::move(done);
  op->wait_start = sim_->Now();
  op->gc_mark = gc_busy_.Total(op->wait_start);
  auto grant = [op] { op->ch->OnBusGrant(op); };
  static_assert(sim::InplaceCallback::fits<decltype(grant)>());
  bus_.Acquire(grant);
}

void Channel::OnBusGrant(BusOp* op) {
  const SimTime now = sim_->Now();
  const std::uint64_t wait = now - op->wait_start;
  if (wait > 0) {
    // The GC share of this wait = how long GC-origin work held the bus
    // while we queued (exact for the capacity-1 bus).
    std::uint64_t gc_part = gc_busy_.Total(now) - op->gc_mark;
    if (gc_part > wait) gc_part = wait;
    if (op->ctx.origin == trace::Origin::kHostRead) {
      gc_stall_read_ns_ += gc_part;
    } else if (op->ctx.origin == trace::Origin::kHostWrite) {
      gc_stall_write_ns_ += gc_part;
    }
    if (tracer_ != nullptr && tracer_->enabled() && op->ctx.span != 0) {
      const SimTime split = now - gc_part;
      if (split > op->wait_start) {
        tracer_->Record(trace::Stage::kQueueWait, op->ctx.origin,
                        op->ctx.span, op->ctx.parent, track_,
                        op->wait_start, split);
      }
      if (gc_part > 0) {
        tracer_->Record(trace::Stage::kGcStall, op->ctx.origin,
                        op->ctx.span, op->ctx.parent, track_, split, now);
      }
    }
  }
  if (trace::IsGcOrigin(op->ctx.origin)) gc_busy_.Enter(now);
  auto finish = [op] { op->ch->FinishBusOp(op); };
  static_assert(sim::InplaceCallback::fits<decltype(finish)>());
  sim_->Schedule(op->duration, finish);
}

void Channel::FinishBusOp(BusOp* op) {
  const SimTime now = sim_->Now();
  if (tracer_ != nullptr && tracer_->enabled() && op->ctx.span != 0) {
    tracer_->Record(trace::Stage::kTransfer, op->ctx.origin, op->ctx.span,
                    op->ctx.parent, track_, now - op->duration, now);
  }
  if (trace::IsGcOrigin(op->ctx.origin)) gc_busy_.Exit(now);
  sim::InplaceCallback cb = std::move(op->done);
  ReleaseBusOp(op);
  bus_.Release();
  cb();
}

}  // namespace postblock::ssd
