#include "ssd/write_buffer.h"

#include <utility>

namespace postblock::ssd {

WriteBuffer::WriteBuffer(sim::Simulator* sim, ftl::Ftl* ftl,
                         const WriteBufferConfig& config,
                         std::uint32_t num_luns)
    : sim_(sim),
      ftl_(ftl),
      config_(config),
      max_inflight_(config.drain_depth_per_lun * num_luns) {}

bool WriteBuffer::Lookup(Lba lba, std::uint64_t* token) const {
  auto it = entries_.find(lba);
  if (it == entries_.end()) return false;
  *token = it->second.token;
  return true;
}

void WriteBuffer::SubmitWrite(Lba lba, std::uint64_t token,
                              std::function<void(Status)> cb) {
  auto it = entries_.find(lba);
  if (it != entries_.end()) {
    // Absorb: replace the buffered copy in place.
    counters_.Increment("absorbed_overwrites");
    it->second.token = token;
    it->second.version = next_version_++;
    it->second.retried = false;  // fresh data, fresh retry budget
    if (!it->second.queued) {
      it->second.queued = true;
      drain_fifo_.push_back(lba);
    }
    sim_->Schedule(config_.insert_ns,
                   [cb = std::move(cb)]() { cb(Status::Ok()); });
    PumpDrain();
    return;
  }
  if (entries_.size() >= config_.pages) {
    counters_.Increment("buffer_full_waits");
    space_waiters_.push_back(WaitingInsert{lba, token, std::move(cb)});
    PumpDrain();
    return;
  }
  counters_.Increment("inserts");
  Entry e;
  e.token = token;
  e.version = next_version_++;
  e.queued = true;
  entries_[lba] = e;
  drain_fifo_.push_back(lba);
  sim_->Schedule(config_.insert_ns,
                 [cb = std::move(cb)]() { cb(Status::Ok()); });
  PumpDrain();
}

void WriteBuffer::PumpDrain() {
  while (inflight_drains_ < max_inflight_ && !drain_fifo_.empty()) {
    const Lba lba = drain_fifo_.front();
    drain_fifo_.pop_front();
    auto it = entries_.find(lba);
    if (it == entries_.end() || !it->second.queued) continue;
    it->second.queued = false;
    it->second.draining = true;
    const std::uint64_t version = it->second.version;
    const std::uint64_t token = it->second.token;
    ++inflight_drains_;
    counters_.Increment("drains");
    ftl_->Write(lba, token, [this, lba, version](Status st) {
      --inflight_drains_;
      if (!st.ok()) counters_.Increment("drain_failures");
      auto it = entries_.find(lba);
      if (it != entries_.end() && it->second.version == version) {
        if (st.ok()) {
          // Not rewritten while draining: the buffered copy is durable.
          entries_.erase(it);
        } else if (!it->second.retried) {
          // Keep the dirty data and try the flash once more (the FTL
          // places retries on a fresh block, so a one-off media error
          // is usually survivable).
          it->second.retried = true;
          it->second.draining = false;
          it->second.queued = true;
          drain_fifo_.push_back(lba);
          counters_.Increment("drain_retries");
        } else {
          // Retry burned too: the page is lost. Surface the real
          // status to flush waiters instead of a false Ok.
          entries_.erase(it);
          counters_.Increment("drain_drops");
          if (drain_error_.ok()) drain_error_ = st;
        }
      } else if (it != entries_.end()) {
        // Rewritten while draining; the newer version will drain on its
        // own and supersedes this copy, failed or not.
        it->second.draining = false;
      }
      // Freed space: admit a waiting insert.
      if (!space_waiters_.empty() && entries_.size() < config_.pages) {
        WaitingInsert w = std::move(space_waiters_.front());
        space_waiters_.pop_front();
        SubmitWrite(w.lba, w.token, std::move(w.cb));
      }
      PumpDrain();
      CheckFlushWaiters();
    });
  }
}

void WriteBuffer::Drop(Lba lba) {
  auto it = entries_.find(lba);
  if (it == entries_.end()) return;
  // Remove from lookups immediately — a post-trim read must not hit the
  // stale copy. If a drain of this entry is in flight, its completion
  // tolerates the missing entry, and the FTL's sequence ordering makes
  // the trailing flash write lose to the trim.
  entries_.erase(it);
  counters_.Increment("dropped_by_trim");
  CheckFlushWaiters();
}

void WriteBuffer::Flush(std::function<void(Status)> cb) {
  if (empty() && inflight_drains_ == 0) {
    const Status st = drain_error_;
    drain_error_ = Status::Ok();
    sim_->Schedule(0, [cb = std::move(cb), st]() { cb(st); });
    return;
  }
  flush_waiters_.push_back(std::move(cb));
  PumpDrain();
}

void WriteBuffer::CheckFlushWaiters() {
  if (!(empty() && inflight_drains_ == 0) || flush_waiters_.empty()) {
    return;
  }
  const Status st = drain_error_;
  drain_error_ = Status::Ok();
  auto waiters = std::move(flush_waiters_);
  flush_waiters_.clear();
  for (auto& w : waiters) w(st);
}

void WriteBuffer::DiscardAll() {
  entries_.clear();
  drain_fifo_.clear();
  space_waiters_.clear();
  inflight_drains_ = 0;
  drain_error_ = Status::Ok();
  counters_.Increment("discards");
}

void WriteBuffer::RequeueAfterPowerCycle() {
  inflight_drains_ = 0;
  drain_fifo_.clear();
  for (auto& [lba, e] : entries_) {
    e.draining = false;
    e.queued = true;
    drain_fifo_.push_back(lba);
  }
  counters_.Increment("requeues");
  PumpDrain();
}

}  // namespace postblock::ssd
