#include "ssd/controller.h"

#include <string>
#include <utility>

#include "sim/inplace_callback.h"

namespace postblock::ssd {

Controller::Controller(sim::Simulator* sim, const Config& config)
    : sim_(sim),
      config_(config),
      flash_(config.geometry, config.timing, config.errors, config.seed) {
  const auto& g = config_.geometry;
  channels_.reserve(g.channels);
  for (std::uint32_t c = 0; c < g.channels; ++c) {
    channels_.push_back(std::make_unique<Channel>(sim_, c, config_.timing,
                                                  g.page_size_bytes));
  }
  units_per_lun_ = config_.plane_parallelism ? g.planes_per_lun : 1;
  units_.reserve(g.luns() * units_per_lun_);
  for (std::uint32_t l = 0; l < g.luns(); ++l) {
    for (std::uint32_t p = 0; p < units_per_lun_; ++p) {
      units_.push_back(std::make_unique<sim::Resource>(
          sim_, "lun-" + std::to_string(l) + "." + std::to_string(p)));
    }
  }
}

Controller::Op* Controller::AcquireOp() {
  if (!op_free_.empty()) {
    Op* op = op_free_.back();
    op_free_.pop_back();
    return op;
  }
  ops_.push_back(std::make_unique<Op>());
  return ops_.back().get();
}

void Controller::ReleaseOp(Op* op) {
  op->read_cb = nullptr;
  op->op_cb = nullptr;
  op_free_.push_back(op);
}

// --- Read: [LUN: cmd + array read] then [channel: transfer out] --------

void Controller::ReadPage(const flash::Ppa& ppa, ReadCallback on_done) {
  Op* op = AcquireOp();
  op->src = ppa;
  op->start = sim_->Now();
  op->epoch = epoch_;
  op->lun = unit_for(ppa);
  op->chan = channels_[ppa.channel].get();
  op->read_cb = std::move(on_done);
  auto grant = [this, op] { ReadArrayPhase(op); };
  static_assert(sim::InplaceCallback::fits<decltype(grant)>());
  op->lun->Acquire(grant);
}

void Controller::ReadArrayPhase(Op* op) {
  // Array read: page cells -> on-chip page register. LUN is busy; the
  // channel is not (command cycles folded into the array time).
  const SimTime array_read =
      config_.timing.cmd_ns + config_.timing.read_ns;
  auto next = [this, op] { ReadTransferPhase(op); };
  static_assert(sim::InplaceCallback::fits<decltype(next)>());
  sim_->Schedule(array_read, next);
}

void Controller::ReadTransferPhase(Op* op) {
  // Data transfer: page register -> controller over the shared bus.
  auto next = [this, op] { FinishRead(op); };
  static_assert(sim::InplaceCallback::fits<decltype(next)>());
  op->chan->Transfer(next);
}

void Controller::FinishRead(Op* op) {
  op->lun->Release();
  if (op->epoch != epoch_) {  // power-cycled away
    ReleaseOp(op);
    return;
  }
  auto result = flash_.Read(op->src);
  read_latency_.Record(sim_->Now() - op->start);
  const auto& t = config_.timing;
  flash_.mutable_counters()->Add(
      "energy_nj",
      t.read_energy_nj +
          t.transfer_nj_per_kib * config_.geometry.page_size_bytes / 1024);
  ReadCallback cb = std::move(op->read_cb);
  ReleaseOp(op);
  cb(std::move(result));
}

// --- Program: [channel: transfer in] then [LUN: array program] ---------

void Controller::ProgramPage(const flash::Ppa& ppa,
                             const flash::PageData& data,
                             OpCallback on_done) {
  Op* op = AcquireOp();
  op->src = ppa;
  op->data = data;
  op->start = sim_->Now();
  op->epoch = epoch_;
  op->lun = unit_for(ppa);
  op->chan = channels_[ppa.channel].get();
  op->op_cb = std::move(on_done);
  auto grant = [this, op] {
    // Data transfer: controller -> page register (bus busy, array idle).
    auto next = [this, op] { ProgramArrayPhase(op); };
    static_assert(sim::InplaceCallback::fits<decltype(next)>());
    op->chan->Transfer(next);
  };
  static_assert(sim::InplaceCallback::fits<decltype(grant)>());
  op->lun->Acquire(grant);
}

void Controller::ProgramArrayPhase(Op* op) {
  // Array program: page register -> cells (LUN busy, bus free).
  auto next = [this, op] { FinishProgram(op); };
  static_assert(sim::InplaceCallback::fits<decltype(next)>());
  sim_->Schedule(config_.timing.program_ns, next);
}

void Controller::FinishProgram(Op* op) {
  op->lun->Release();
  if (op->epoch != epoch_) {  // power-cycled away
    ReleaseOp(op);
    return;
  }
  Status st = flash_.Program(op->src, op->data);
  program_latency_.Record(sim_->Now() - op->start);
  const auto& t = config_.timing;
  flash_.mutable_counters()->Add(
      "energy_nj",
      t.program_energy_nj +
          t.transfer_nj_per_kib * config_.geometry.page_size_bytes / 1024);
  OpCallback cb = std::move(op->op_cb);
  ReleaseOp(op);
  cb(std::move(st));
}

// --- Copyback: [channel: cmd] then in-die [array read + program] -------

void Controller::CopybackPage(const flash::Ppa& src, const flash::Ppa& dst,
                              OpCallback on_done) {
  if (src.GlobalLun(config_.geometry) != dst.GlobalLun(config_.geometry) ||
      src.plane != dst.plane) {
    sim_->Schedule(0, [on_done = std::move(on_done)]() {
      on_done(Status::InvalidArgument(
          "copyback requires same plane of same LUN"));
    });
    return;
  }
  Op* op = AcquireOp();
  op->src = src;
  op->dst = dst;
  op->start = sim_->Now();
  op->epoch = epoch_;
  op->lun = unit_for(src);
  op->chan = channels_[src.channel].get();
  op->op_cb = std::move(on_done);
  // Command cycles on the bus, then array read + array program back to
  // back inside the die; no data transfer.
  auto grant = [this, op] {
    auto next = [this, op] { CopybackBusyPhase(op); };
    static_assert(sim::InplaceCallback::fits<decltype(next)>());
    op->chan->Command(next);
  };
  static_assert(sim::InplaceCallback::fits<decltype(grant)>());
  op->lun->Acquire(grant);
}

void Controller::CopybackBusyPhase(Op* op) {
  const SimTime busy = config_.timing.read_ns + config_.timing.program_ns;
  auto next = [this, op] { FinishCopyback(op); };
  static_assert(sim::InplaceCallback::fits<decltype(next)>());
  sim_->Schedule(busy, next);
}

void Controller::FinishCopyback(Op* op) {
  op->lun->Release();
  if (op->epoch != epoch_) {  // power-cycled away
    ReleaseOp(op);
    return;
  }
  auto data = flash_.Peek(op->src);  // in-die move: no ECC path
  Status st = data.ok() ? flash_.Program(op->dst, *data) : data.status();
  program_latency_.Record(sim_->Now() - op->start);
  flash_.mutable_counters()->Increment("copybacks");
  flash_.mutable_counters()->Add(
      "energy_nj",
      config_.timing.read_energy_nj + config_.timing.program_energy_nj);
  OpCallback cb = std::move(op->op_cb);
  ReleaseOp(op);
  cb(std::move(st));
}

// --- Erase: [channel: cmd] then [LUN: block erase] ---------------------

void Controller::EraseBlock(const flash::BlockAddr& addr,
                            OpCallback on_done) {
  Op* op = AcquireOp();
  op->src = flash::Ppa{addr.channel, addr.lun, addr.plane, addr.block, 0};
  op->start = sim_->Now();
  op->epoch = epoch_;
  op->lun = unit_for(addr);
  op->chan = channels_[addr.channel].get();
  op->op_cb = std::move(on_done);
  auto grant = [this, op] {
    auto next = [this, op] { EraseBusyPhase(op); };
    static_assert(sim::InplaceCallback::fits<decltype(next)>());
    op->chan->Command(next);
  };
  static_assert(sim::InplaceCallback::fits<decltype(grant)>());
  op->lun->Acquire(grant);
}

void Controller::EraseBusyPhase(Op* op) {
  auto next = [this, op] { FinishErase(op); };
  static_assert(sim::InplaceCallback::fits<decltype(next)>());
  sim_->Schedule(config_.timing.erase_ns, next);
}

void Controller::FinishErase(Op* op) {
  op->lun->Release();
  if (op->epoch != epoch_) {  // power-cycled away
    ReleaseOp(op);
    return;
  }
  Status st = flash_.Erase(op->src.Block());
  erase_latency_.Record(sim_->Now() - op->start);
  flash_.mutable_counters()->Add("energy_nj",
                                 config_.timing.erase_energy_nj);
  OpCallback cb = std::move(op->op_cb);
  ReleaseOp(op);
  cb(std::move(st));
}

}  // namespace postblock::ssd
