#include "ssd/controller.h"

#include <string>
#include <utility>

namespace postblock::ssd {

Controller::Controller(sim::Simulator* sim, const Config& config)
    : sim_(sim),
      config_(config),
      flash_(config.geometry, config.timing, config.errors, config.seed) {
  const auto& g = config_.geometry;
  channels_.reserve(g.channels);
  for (std::uint32_t c = 0; c < g.channels; ++c) {
    channels_.push_back(std::make_unique<Channel>(sim_, c, config_.timing,
                                                  g.page_size_bytes));
  }
  units_per_lun_ = config_.plane_parallelism ? g.planes_per_lun : 1;
  units_.reserve(g.luns() * units_per_lun_);
  for (std::uint32_t l = 0; l < g.luns(); ++l) {
    for (std::uint32_t p = 0; p < units_per_lun_; ++p) {
      units_.push_back(std::make_unique<sim::Resource>(
          sim_, "lun-" + std::to_string(l) + "." + std::to_string(p)));
    }
  }
}

void Controller::ReadPage(const flash::Ppa& ppa, ReadCallback on_done) {
  const SimTime start = sim_->Now();
  const std::uint64_t epoch = epoch_;
  sim::Resource* lun = unit_for(ppa);
  Channel* chan = channels_[ppa.channel].get();
  const SimTime array_read =
      config_.timing.cmd_ns + config_.timing.read_ns;
  lun->Acquire([this, ppa, lun, chan, array_read, start, epoch,
                on_done = std::move(on_done)]() mutable {
    // Array read: page cells -> on-chip page register. LUN is busy; the
    // channel is not (command cycles folded into array_read).
    sim_->Schedule(array_read, [this, ppa, lun, chan, start, epoch,
                                on_done = std::move(on_done)]() mutable {
      // Data transfer: page register -> controller over the shared bus.
      chan->Transfer([this, ppa, lun, start, epoch,
                      on_done = std::move(on_done)]() {
        lun->Release();
        if (epoch != epoch_) return;  // power-cycled away
        auto result = flash_.Read(ppa);
        read_latency_.Record(sim_->Now() - start);
        const auto& t = config_.timing;
        flash_.mutable_counters()->Add(
            "energy_nj", t.read_energy_nj +
                             t.transfer_nj_per_kib *
                                 config_.geometry.page_size_bytes / 1024);
        on_done(std::move(result));
      });
    });
  });
}

void Controller::ProgramPage(const flash::Ppa& ppa,
                             const flash::PageData& data,
                             OpCallback on_done) {
  const SimTime start = sim_->Now();
  const std::uint64_t epoch = epoch_;
  sim::Resource* lun = unit_for(ppa);
  Channel* chan = channels_[ppa.channel].get();
  lun->Acquire([this, ppa, data, lun, chan, start, epoch,
                on_done = std::move(on_done)]() mutable {
    // Data transfer: controller -> page register (bus busy, array idle).
    chan->Transfer([this, ppa, data, lun, start, epoch,
                    on_done = std::move(on_done)]() mutable {
      // Array program: page register -> cells (LUN busy, bus free).
      sim_->Schedule(config_.timing.program_ns,
                     [this, ppa, data, lun, start, epoch,
                      on_done = std::move(on_done)]() {
                       lun->Release();
                       if (epoch != epoch_) return;  // power-cycled away
                       Status st = flash_.Program(ppa, data);
                       program_latency_.Record(sim_->Now() - start);
                       const auto& t = config_.timing;
                       flash_.mutable_counters()->Add(
                           "energy_nj",
                           t.program_energy_nj +
                               t.transfer_nj_per_kib *
                                   config_.geometry.page_size_bytes /
                                   1024);
                       on_done(std::move(st));
                     });
    });
  });
}

void Controller::CopybackPage(const flash::Ppa& src, const flash::Ppa& dst,
                              OpCallback on_done) {
  if (src.GlobalLun(config_.geometry) != dst.GlobalLun(config_.geometry) ||
      src.plane != dst.plane) {
    sim_->Schedule(0, [on_done = std::move(on_done)]() {
      on_done(Status::InvalidArgument(
          "copyback requires same plane of same LUN"));
    });
    return;
  }
  const SimTime start = sim_->Now();
  const std::uint64_t epoch = epoch_;
  sim::Resource* lun = unit_for(src);
  Channel* chan = channels_[src.channel].get();
  // Command cycles on the bus, then array read + array program back to
  // back inside the die; no data transfer.
  lun->Acquire([this, src, dst, lun, chan, start, epoch,
                on_done = std::move(on_done)]() mutable {
    chan->Command([this, src, dst, lun, start, epoch,
                   on_done = std::move(on_done)]() mutable {
      const SimTime busy =
          config_.timing.read_ns + config_.timing.program_ns;
      sim_->Schedule(busy, [this, src, dst, lun, start, epoch,
                            on_done = std::move(on_done)]() {
        lun->Release();
        if (epoch != epoch_) return;  // power-cycled away
        auto data = flash_.Peek(src);  // in-die move: no ECC path
        Status st = data.ok() ? flash_.Program(dst, *data) : data.status();
        program_latency_.Record(sim_->Now() - start);
        flash_.mutable_counters()->Increment("copybacks");
        flash_.mutable_counters()->Add(
            "energy_nj", config_.timing.read_energy_nj +
                             config_.timing.program_energy_nj);
        on_done(std::move(st));
      });
    });
  });
}

void Controller::EraseBlock(const flash::BlockAddr& addr,
                            OpCallback on_done) {
  const SimTime start = sim_->Now();
  const std::uint64_t epoch = epoch_;
  sim::Resource* lun = unit_for(addr);
  Channel* chan = channels_[addr.channel].get();
  lun->Acquire([this, addr, lun, chan, start, epoch,
                on_done = std::move(on_done)]() mutable {
    chan->Command([this, addr, lun, start, epoch,
                   on_done = std::move(on_done)]() mutable {
      sim_->Schedule(config_.timing.erase_ns,
                     [this, addr, lun, start, epoch,
                      on_done = std::move(on_done)]() {
                       lun->Release();
                       if (epoch != epoch_) return;  // power-cycled away
                       Status st = flash_.Erase(addr);
                       erase_latency_.Record(sim_->Now() - start);
                       flash_.mutable_counters()->Add(
                           "energy_nj", config_.timing.erase_energy_nj);
                       on_done(std::move(st));
                     });
    });
  });
}

}  // namespace postblock::ssd
