#include "ssd/controller.h"

#include <cassert>
#include <string>
#include <utility>

#include "sim/inplace_callback.h"
#include "ssd/shard_router.h"

namespace postblock::ssd {

Controller::Controller(sim::Simulator* sim, const Config& config)
    : sim_(sim),
      config_(config),
      flash_(config.geometry, config.timing, config.errors, config.seed),
      tracer_(config.tracer),
      metrics_(config.metrics) {
  Init(nullptr, {});
}

Controller::Controller(ShardRouter* router, const Config& config,
                       const std::vector<trace::Tracer*>& channel_tracers)
    : sim_(router->controller_sim()),
      config_(config),
      flash_(config.geometry, config.timing, config.errors, config.seed),
      tracer_(config.tracer),
      metrics_(config.metrics) {
  // The registry's polled gauges (units busy, channel busy, GC clocks)
  // read channel-shard state from the sampler's shard — unsupported
  // until metrics grow a fold-at-rendezvous path.
  assert(config.metrics == nullptr &&
         "metrics sampling is not supported on the sharded device");
  assert(router->plan().channel_shard.size() == config.geometry.channels);
  Init(router, channel_tracers);
}

void Controller::Init(ShardRouter* router,
                      const std::vector<trace::Tracer*>& channel_tracers) {
  router_ = router;
  sharded_ = router != nullptr;
  const auto& g = config_.geometry;
  if (sharded_) {
    chan_tracers_ = channel_tracers;
    chan_tracers_.resize(g.channels, nullptr);
  }
  channels_.reserve(g.channels);
  for (std::uint32_t c = 0; c < g.channels; ++c) {
    sim::Simulator* chan_sim = sharded_ ? router_->channel_sim(c) : sim_;
    channels_.push_back(std::make_unique<Channel>(
        chan_sim, c, config_.timing, g.page_size_bytes));
    channels_.back()->set_tracer(sharded_ ? chan_tracers_[c] : tracer_);
  }
  units_per_lun_ = config_.plane_parallelism ? g.planes_per_lun : 1;
  units_.reserve(g.luns() * units_per_lun_);
  for (std::uint32_t l = 0; l < g.luns(); ++l) {
    sim::Simulator* unit_sim =
        sharded_ ? router_->channel_sim(l / g.luns_per_channel) : sim_;
    for (std::uint32_t p = 0; p < units_per_lun_; ++p) {
      units_.push_back(std::make_unique<sim::Resource>(
          unit_sim, "lun-" + std::to_string(l) + "." + std::to_string(p)));
    }
  }
  unit_gc_.resize(units_.size());
  gc_stall_read_by_chan_.assign(g.channels, 0);
  gc_stall_write_by_chan_.assign(g.channels, 0);
  injector_ = config_.fault_injector;
  flash_.set_fault_injector(injector_);
  spares_.assign(g.luns(), config_.reliability.spare_blocks_per_lun);
  if (sharded_) {
    // Per-unit timeline tracks live on the owning channel's ring; the
    // shared tracer only ever records from the controller shard (health
    // events, flash array, device spans).
    bool any = false;
    for (trace::Tracer* t : chan_tracers_) any = any || t != nullptr;
    if (any) {
      unit_tracks_.reserve(units_.size());
      for (std::uint32_t u = 0; u < units_.size(); ++u) {
        const std::uint32_t chan =
            u / (units_per_lun_ * g.luns_per_channel);
        trace::Tracer* t = chan_tracers_[chan];
        unit_tracks_.push_back(
            t == nullptr
                ? 0
                : t->RegisterTrack(trace::kPidFlash, units_[u]->name()));
      }
    }
    if (tracer_ != nullptr) {
      health_track_ = tracer_->RegisterTrack(trace::kPidFlash, "health");
      flash_.set_tracer(tracer_, sim_);
    }
  } else if (tracer_ != nullptr) {
    unit_tracks_.reserve(units_.size());
    for (const auto& u : units_) {
      unit_tracks_.push_back(
          tracer_->RegisterTrack(trace::kPidFlash, u->name()));
    }
    // Media-health events (retry rungs, block retirement) on their own
    // track, so error handling is visible next to the op timeline.
    health_track_ = tracer_->RegisterTrack(trace::kPidFlash, "health");
    flash_.set_tracer(tracer_, sim_);
  }
  if (metrics_ != nullptr) RegisterMetrics();
}

void Controller::RegisterMetrics() {
  metrics::MetricRegistry* m = metrics_;
  // Pushed counters, maintained in parallel with flash_.counters() on
  // the same ok-path conditions — the sampler's final row must equal
  // the Counters (the two observability systems cross-check).
  m_pages_read_ = m->AddCounter("ssd.pages_read");
  m_pages_programmed_ = m->AddCounter("ssd.pages_programmed");
  m_blocks_erased_ = m->AddCounter("ssd.blocks_erased");
  m_copybacks_ = m->AddCounter("ssd.copybacks");
  // Windowed op latency (queueing included), reset every interval.
  m_read_lat_ = m->AddHistogram("ssd.read_lat_ns");
  m_program_lat_ = m->AddHistogram("ssd.program_lat_ns");
  m_erase_lat_ = m->AddHistogram("ssd.erase_lat_ns");
  // Reliability layer: retry-ladder activity, ECC outcomes, retirement
  // and the bad-block spare budget.
  m_read_retries_ = m->AddCounter("ssd.read_retries");
  m_blocks_retired_ = m->AddCounter("ssd.blocks_retired");
  // Host-visible latency of reads that needed at least one retry rung
  // (the "retry latency tax"), windowed like the other op histograms.
  m_retry_lat_ = m->AddHistogram("ssd.read_retry_lat_ns");
  m->AddPolledCounter("ssd.reads_correctable", [this] {
    return flash_.counters().Get("reads_correctable");
  });
  m->AddPolledCounter("ssd.reads_uncorrectable", [this] {
    return flash_.counters().Get("reads_uncorrectable");
  });
  m->AddPolledCounter("ssd.erase_failures", [this] {
    return flash_.counters().Get("erase_failures");
  });
  m->AddGauge("ssd.spare_blocks", [this] {
    return static_cast<double>(spare_blocks_total());
  });
  m->AddGauge("ssd.read_only",
              [this] { return read_only_ ? 1.0 : 0.0; });
  // Busy-time integrals: per-window deltas over these divided by the
  // window length give busy fractions (BusyClock arithmetic, PR 2).
  m->AddPolledCounter("ssd.energy_nj", [this] {
    return flash_.counters().Get("energy_nj");
  });
  m->AddPolledCounter("ssd.gc_stall_read_ns",
                      [this] { return GcStallReadNs(); });
  m->AddPolledCounter("ssd.gc_stall_write_ns",
                      [this] { return GcStallWriteNs(); });
  m->AddPolledCounter("ssd.units_busy_ns", [this] {
    std::uint64_t total = 0;
    for (const auto& u : units_) total += u->busy_ns();
    return total;
  });
  m->AddPolledCounter("ssd.units_gc_busy_ns", [this] {
    const SimTime now = sim_->Now();
    std::uint64_t total = 0;
    for (const auto& g : unit_gc_) total += g.Total(now);
    return total;
  });
  for (std::uint32_t c = 0; c < channels_.size(); ++c) {
    Channel* ch = channels_[c].get();
    const std::string prefix = "ssd.chan" + std::to_string(c);
    m->AddPolledCounter(prefix + ".busy_ns",
                        [ch] { return ch->resource()->busy_ns(); });
    m->AddPolledCounter(prefix + ".gc_busy_ns", [this, ch] {
      return ch->gc_busy_ns(sim_->Now());
    });
  }
  m->AddGauge("ssd.wear_min", [this] {
    return static_cast<double>(flash_.MinEraseCount());
  });
  m->AddGauge("ssd.wear_max", [this] {
    return static_cast<double>(flash_.MaxEraseCount());
  });
  m->AddGauge("ssd.wear_spread", [this] {
    return static_cast<double>(flash_.MaxEraseCount() -
                               flash_.MinEraseCount());
  });
  m->AddGauge("ssd.bad_blocks", [this] {
    return static_cast<double>(flash_.bad_blocks());
  });
}

Controller::Op* Controller::AcquireOp() {
  if (!op_free_.empty()) {
    Op* op = op_free_.back();
    op_free_.pop_back();
    return op;
  }
  ops_.push_back(std::make_unique<Op>());
  return ops_.back().get();
}

void Controller::ReleaseOp(Op* op) {
  op->read_cb = nullptr;
  op->op_cb = nullptr;
  op->ctx = trace::Ctx{};
  op_free_.push_back(op);
}

// --- Unit wait attribution ---------------------------------------------

void Controller::StartOp(Op* op, trace::Ctx ctx,
                         void (Controller::*phase)(Op*)) {
  op->start = sim_->Now();
  op->epoch = epoch_;
  op->ctx = ctx;
  op->retry = 0;
  op->lun = units_[op->unit].get();
  op->chan = channels_[op->src.channel].get();
  if (!sharded_) {
    op->sim = sim_;
    BeginUnitWait(op, phase);
    return;
  }
  // Controller decision made: pre-draw the stuck-busy script (the
  // injector is consume-once controller state) and ship the op across
  // the dispatch edge. Everything until EndPipeline runs on the
  // channel's shard.
  op->sim = router_->channel_sim(op->src.channel);
  op->stuck = StuckPenalty(op);
  auto cross = [this, op, phase] { BeginUnitWait(op, phase); };
  static_assert(sim::InplaceCallback::fits<decltype(cross)>());
  router_->Dispatch(op->src.channel, cross);
}

void Controller::BeginUnitWait(Op* op, void (Controller::*phase)(Op*)) {
  const SimTime now = op->sim->Now();
  op->wait_start = now;
  op->gc_mark = unit_gc_[op->unit].Total(now);
  auto grant = [this, op, phase] {
    OnUnitGrant(op);
    (this->*phase)(op);
  };
  static_assert(sim::InplaceCallback::fits<decltype(grant)>());
  op->lun->Acquire(grant);
}

void Controller::OnUnitGrant(Op* op) {
  const SimTime now = op->sim->Now();
  const std::uint64_t wait = now - op->wait_start;
  if (wait > 0) {
    // GC share of the wait = GC-held unit time that elapsed while this
    // op queued; exact since each unit is a capacity-1 resource.
    std::uint64_t gc_part = unit_gc_[op->unit].Total(now) - op->gc_mark;
    if (gc_part > wait) gc_part = wait;
    if (op->ctx.origin == trace::Origin::kHostRead) {
      gc_stall_read_by_chan_[op->src.channel] += gc_part;
    } else if (op->ctx.origin == trace::Origin::kHostWrite) {
      gc_stall_write_by_chan_[op->src.channel] += gc_part;
    }
    if (Traced(op)) {
      const std::uint32_t track = unit_tracks_[op->unit];
      const SimTime split = now - gc_part;
      if (split > op->wait_start) {
        TracerFor(op)->Record(trace::Stage::kQueueWait, op->ctx.origin,
                              op->ctx.span, op->ctx.parent, track,
                              op->wait_start, split, op->src.block);
      }
      if (gc_part > 0) {
        TracerFor(op)->Record(trace::Stage::kGcStall, op->ctx.origin,
                              op->ctx.span, op->ctx.parent, track, split,
                              now, op->src.block);
      }
    }
  }
  if (trace::IsGcOrigin(op->ctx.origin)) unit_gc_[op->unit].Enter(now);
}

void Controller::ExitUnit(Op* op) {
  // Runs on every completion path, stale epoch included (the unit
  // resource is likewise always released), so GC occupancy balances.
  if (trace::IsGcOrigin(op->ctx.origin)) {
    unit_gc_[op->unit].Exit(op->sim->Now());
  }
  op->lun->Release();
}

void Controller::EndPipeline(Op* op, void (Controller::*finish)(Op*)) {
  ExitUnit(op);
  if (!sharded_) {
    (this->*finish)(op);
    return;
  }
  auto cross = [this, op, finish] { (this->*finish)(op); };
  static_assert(sim::InplaceCallback::fits<decltype(cross)>());
  router_->Complete(op->src.channel, cross);
}

void Controller::RecordCellOp(Op* op, SimTime busy_ns) {
  if (!Traced(op)) return;
  const SimTime now = op->sim->Now();
  TracerFor(op)->Record(trace::Stage::kCellOp, op->ctx.origin,
                        op->ctx.span, op->ctx.parent,
                        unit_tracks_[op->unit], now, now + busy_ns,
                        op->src.block);
}

std::uint64_t Controller::GcStallReadNs() const {
  std::uint64_t total = 0;
  for (std::uint64_t v : gc_stall_read_by_chan_) total += v;
  for (const auto& ch : channels_) total += ch->gc_stall_read_ns();
  return total;
}

std::uint64_t Controller::GcStallWriteNs() const {
  std::uint64_t total = 0;
  for (std::uint64_t v : gc_stall_write_by_chan_) total += v;
  for (const auto& ch : channels_) total += ch->gc_stall_write_ns();
  return total;
}

// --- Read: [LUN: cmd + array read] then [channel: transfer out] --------

void Controller::ReadPage(const flash::Ppa& ppa, ReadCallback on_done,
                          trace::Ctx ctx) {
  Op* op = AcquireOp();
  op->src = ppa;
  op->unit = UnitIndexFor(ppa);
  op->read_cb = std::move(on_done);
  StartOp(op, ctx, &Controller::ReadArrayPhase);
}

void Controller::ReadArrayPhase(Op* op) {
  // Array read: page cells -> on-chip page register. LUN is busy; the
  // channel is not (command cycles folded into the array time).
  // Retry-ladder rungs re-sense with tuned reference voltages, each
  // adding an escalating multiple of the base array time.
  SimTime array_read = config_.timing.cmd_ns + config_.timing.read_ns;
  if (op->retry > 0) {
    array_read += static_cast<SimTime>(
        static_cast<double>(config_.timing.read_ns) *
        config_.reliability.retry_latency_factor * op->retry);
  }
  array_read += PenaltyOf(op);
  RecordCellOp(op, array_read);
  auto next = [this, op] { ReadTransferPhase(op); };
  static_assert(sim::InplaceCallback::fits<decltype(next)>());
  op->sim->Schedule(array_read, next);
}

void Controller::ReadTransferPhase(Op* op) {
  // Data transfer: page register -> controller over the shared bus.
  auto next = [this, op] { EndPipeline(op, &Controller::FinishRead); };
  static_assert(sim::InplaceCallback::fits<decltype(next)>());
  op->chan->Transfer(op->ctx, next);
}

void Controller::FinishRead(Op* op) {
  if (op->epoch != epoch_) {  // power-cycled away
    ReleaseOp(op);
    return;
  }
  flash::ReadOutcome outcome = flash::ReadOutcome::kClean;
  auto result = flash_.Read(op->src, &outcome, op->retry);
  // Per-attempt accounting: every rung is a real array read + transfer,
  // so energy and the pages_read mirror track flash_.counters() (which
  // also count per attempt).
  if (metrics_ != nullptr &&
      (result.ok() || result.status().IsDataLoss())) {
    metrics_->Increment(m_pages_read_);
  }
  const auto& t = config_.timing;
  flash_.mutable_counters()->Add(
      "energy_nj",
      t.read_energy_nj +
          t.transfer_nj_per_kib * config_.geometry.page_size_bytes / 1024);
  if (!result.ok() && result.status().IsDataLoss() &&
      op->retry < config_.reliability.read_retry_steps) {
    ++op->retry;
    ++read_retries_;
    flash_.mutable_counters()->Increment("read_retries");
    if (metrics_ != nullptr) metrics_->Increment(m_read_retries_);
    if (TracedHealth(op)) {
      const SimTime now = sim_->Now();
      tracer_->Record(trace::Stage::kCellOp, op->ctx.origin, op->ctx.span,
                      op->ctx.parent, health_track_, now, now + 1,
                      op->src.block);
    }
    RetryRead(op);
    return;
  }
  const SimTime latency = sim_->Now() - op->start;
  read_latency_.Record(latency);
  if (metrics_ != nullptr) {
    metrics_->Record(m_read_lat_, latency);
    if (op->retry > 0) metrics_->Record(m_retry_lat_, latency);
  }
  if (outcome == flash::ReadOutcome::kCorrectable) NoteCorrectable(op->src);
  ReadCallback cb = std::move(op->read_cb);
  ReleaseOp(op);
  cb(std::move(result));
}

void Controller::RetryRead(Op* op) {
  // Back into the unit's queue: the ladder competes with other work
  // like any op, but keeps its original start time so the final
  // latency shows the whole tax. Sharded mode re-crosses the dispatch
  // edge — the retry is a fresh firmware command, priced like one.
  if (!sharded_) {
    BeginUnitWait(op, &Controller::ReadArrayPhase);
    return;
  }
  op->stuck = StuckPenalty(op);
  auto cross = [this, op] {
    BeginUnitWait(op, &Controller::ReadArrayPhase);
  };
  static_assert(sim::InplaceCallback::fits<decltype(cross)>());
  router_->Dispatch(op->src.channel, cross);
}

void Controller::NoteCorrectable(const flash::Ppa& ppa) {
  const std::uint32_t threshold =
      config_.reliability.refresh_correctable_threshold;
  if (threshold == 0) return;
  const std::uint64_t key = ppa.Block().Flatten(config_.geometry);
  const std::uint32_t count = ++correctable_counts_[key];
  if (count < threshold) return;
  correctable_counts_.erase(key);
  flash_.mutable_counters()->Increment("refresh_triggers");
  if (refresh_) refresh_(ppa.Block());
}

SimTime Controller::StuckPenalty(const Op* op) {
  if (injector_ == nullptr) return 0;
  return injector_->StuckBusyPenalty(op->src.GlobalLun(config_.geometry));
}

// --- Program: [channel: transfer in] then [LUN: array program] ---------

void Controller::ProgramPage(const flash::Ppa& ppa,
                             const flash::PageData& data,
                             OpCallback on_done, trace::Ctx ctx) {
  Op* op = AcquireOp();
  op->src = ppa;
  op->data = data;
  op->unit = UnitIndexFor(ppa);
  op->op_cb = std::move(on_done);
  StartOp(op, ctx, &Controller::ProgramTransferPhase);
}

void Controller::ProgramTransferPhase(Op* op) {
  // Data transfer: controller -> page register (bus busy, array idle).
  auto next = [this, op] { ProgramArrayPhase(op); };
  static_assert(sim::InplaceCallback::fits<decltype(next)>());
  op->chan->Transfer(op->ctx, next);
}

void Controller::ProgramArrayPhase(Op* op) {
  // Array program: page register -> cells (LUN busy, bus free).
  const SimTime busy = config_.timing.program_ns + PenaltyOf(op);
  RecordCellOp(op, busy);
  auto next = [this, op] { EndPipeline(op, &Controller::FinishProgram); };
  static_assert(sim::InplaceCallback::fits<decltype(next)>());
  op->sim->Schedule(busy, next);
}

void Controller::FinishProgram(Op* op) {
  if (op->epoch != epoch_) {  // power-cycled away
    ReleaseOp(op);
    return;
  }
  Status st = flash_.Program(op->src, op->data);
  const SimTime latency = sim_->Now() - op->start;
  program_latency_.Record(latency);
  if (metrics_ != nullptr) {
    if (st.ok()) metrics_->Increment(m_pages_programmed_);
    metrics_->Record(m_program_lat_, latency);
  }
  const auto& t = config_.timing;
  flash_.mutable_counters()->Add(
      "energy_nj",
      t.program_energy_nj +
          t.transfer_nj_per_kib * config_.geometry.page_size_bytes / 1024);
  OpCallback cb = std::move(op->op_cb);
  ReleaseOp(op);
  cb(std::move(st));
}

// --- Copyback: [channel: cmd] then in-die [array read + program] -------

void Controller::CopybackPage(const flash::Ppa& src, const flash::Ppa& dst,
                              OpCallback on_done, trace::Ctx ctx) {
  if (src.GlobalLun(config_.geometry) != dst.GlobalLun(config_.geometry) ||
      src.plane != dst.plane) {
    sim_->Schedule(0, [on_done = std::move(on_done)]() {
      on_done(Status::InvalidArgument(
          "copyback requires same plane of same LUN"));
    });
    return;
  }
  Op* op = AcquireOp();
  op->src = src;
  op->dst = dst;
  op->unit = UnitIndexFor(src);
  op->op_cb = std::move(on_done);
  // Command cycles on the bus, then array read + array program back to
  // back inside the die; no data transfer.
  StartOp(op, ctx, &Controller::CopybackCommandPhase);
}

void Controller::CopybackCommandPhase(Op* op) {
  auto next = [this, op] { CopybackBusyPhase(op); };
  static_assert(sim::InplaceCallback::fits<decltype(next)>());
  op->chan->Command(op->ctx, next);
}

void Controller::CopybackBusyPhase(Op* op) {
  const SimTime busy =
      config_.timing.read_ns + config_.timing.program_ns + PenaltyOf(op);
  RecordCellOp(op, busy);
  auto next = [this, op] { EndPipeline(op, &Controller::FinishCopyback); };
  static_assert(sim::InplaceCallback::fits<decltype(next)>());
  op->sim->Schedule(busy, next);
}

void Controller::FinishCopyback(Op* op) {
  if (op->epoch != epoch_) {  // power-cycled away
    ReleaseOp(op);
    return;
  }
  auto data = flash_.Peek(op->src);  // in-die move: no ECC path
  Status st = data.ok() ? flash_.Program(op->dst, *data) : data.status();
  const SimTime latency = sim_->Now() - op->start;
  program_latency_.Record(latency);
  flash_.mutable_counters()->Increment("copybacks");
  if (metrics_ != nullptr) {
    metrics_->Increment(m_copybacks_);
    if (st.ok()) metrics_->Increment(m_pages_programmed_);
    metrics_->Record(m_program_lat_, latency);
  }
  flash_.mutable_counters()->Add(
      "energy_nj",
      config_.timing.read_energy_nj + config_.timing.program_energy_nj);
  OpCallback cb = std::move(op->op_cb);
  ReleaseOp(op);
  cb(std::move(st));
}

// --- Erase: [channel: cmd] then [LUN: block erase] ---------------------

void Controller::EraseBlock(const flash::BlockAddr& addr,
                            OpCallback on_done, trace::Ctx ctx) {
  Op* op = AcquireOp();
  op->src = flash::Ppa{addr.channel, addr.lun, addr.plane, addr.block, 0};
  op->unit = UnitIndexFor(op->src);
  op->op_cb = std::move(on_done);
  StartOp(op, ctx, &Controller::EraseCommandPhase);
}

void Controller::EraseCommandPhase(Op* op) {
  auto next = [this, op] { EraseBusyPhase(op); };
  static_assert(sim::InplaceCallback::fits<decltype(next)>());
  op->chan->Command(op->ctx, next);
}

void Controller::EraseBusyPhase(Op* op) {
  const SimTime busy = config_.timing.erase_ns + PenaltyOf(op);
  RecordCellOp(op, busy);
  auto next = [this, op] { EndPipeline(op, &Controller::FinishErase); };
  static_assert(sim::InplaceCallback::fits<decltype(next)>());
  op->sim->Schedule(busy, next);
}

void Controller::FinishErase(Op* op) {
  if (op->epoch != epoch_) {  // power-cycled away
    ReleaseOp(op);
    return;
  }
  Status st = flash_.Erase(op->src.Block());
  const SimTime latency = sim_->Now() - op->start;
  erase_latency_.Record(latency);
  if (metrics_ != nullptr) {
    // Mirror flash counters: an erase that succeeded but retired the
    // block (DataLoss) still counted as a block erase.
    if (st.ok() || st.IsDataLoss()) metrics_->Increment(m_blocks_erased_);
    metrics_->Record(m_erase_lat_, latency);
  }
  if (st.IsDataLoss()) {
    // The erase retired the block: burn a spare credit instead of
    // silently shrinking over-provisioning. A LUN out of credits can
    // no longer replace capacity, so the device fails safe: read-only.
    ++blocks_retired_;
    if (metrics_ != nullptr) metrics_->Increment(m_blocks_retired_);
    if (TracedHealth(op)) {
      const SimTime now = sim_->Now();
      tracer_->Record(trace::Stage::kCellOp, op->ctx.origin, op->ctx.span,
                      op->ctx.parent, health_track_, now, now + 1,
                      op->src.block);
    }
    const std::uint32_t gl = op->src.GlobalLun(config_.geometry);
    if (gl < spares_.size()) {
      if (spares_[gl] > 0) --spares_[gl];
      if (spares_[gl] == 0) read_only_ = true;
    }
  } else if (st.ok() && !correctable_counts_.empty()) {
    // A fresh erase resets the block's correctable-read history.
    correctable_counts_.erase(op->src.Block().Flatten(config_.geometry));
  }
  flash_.mutable_counters()->Add("energy_nj",
                                 config_.timing.erase_energy_nj);
  OpCallback cb = std::move(op->op_cb);
  ReleaseOp(op);
  cb(std::move(st));
}

}  // namespace postblock::ssd
