#ifndef POSTBLOCK_SSD_SHARDED_BACKEND_H_
#define POSTBLOCK_SSD_SHARDED_BACKEND_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/types.h"
#include "flash/rng_domain.h"
#include "sim/resource.h"
#include "sim/sharded_engine.h"
#include "ssd/config.h"
#include "ssd/shard_plan.h"

namespace postblock::ssd {

/// Runtime knobs for a sharded backend run (the device shape and
/// timing come from ssd::Config).
struct ShardedRunConfig {
  /// Worker threads for the engine (0 = sequential reference core).
  std::uint32_t workers = 0;
  /// Batched doorbell/completion-coalescing grid on the controller
  /// seam; added to controller_overhead_ns on both edge directions
  /// (see ShardPlan::FromConfig). Sets the lookahead window.
  SimTime seam_coalesce_ns = 62 * kMicrosecond;
  /// Closed-loop host IOs kept in flight per channel.
  std::uint32_t queue_depth_per_channel = 16;
  /// Host mix: percent of IOs that are single-page writes (the rest
  /// are single-page reads) — the fig2 read stream vs write stream.
  std::uint32_t write_percent = 25;
  /// Host IOs issued per channel before the run drains.
  std::uint64_t ios_per_channel = 10000;
  /// Aging: initial free pages per channel as a fraction of channel
  /// capacity. Small values start the run with GC already fighting
  /// (the paper's aged device).
  double initial_free_fraction = 0.05;
  /// GC low watermark, in blocks worth of free pages.
  std::uint32_t gc_watermark_blocks = 2;
  /// Victim liveness cap: relocations per GC cycle are drawn uniform
  /// in [0, pages_per_block * cap_x128 / 128] from the channel shard's
  /// own Rng domain.
  std::uint32_t gc_max_live_x128 = 32;
  /// Record per-shard schedule fingerprints (the determinism witness).
  bool fingerprint = true;
  /// Multi-tenant attribution: when non-empty, the controller shard
  /// labels each issued host IO with a tenant drawn by deficit round
  /// robin over these weights (the vbd backend's arbiter, exercised on
  /// the parallel engine) and keeps per-tenant completion counts and
  /// latency histograms, folded into ModelFingerprint. Attribution is
  /// pure bookkeeping — no extra Rng draws, no schedule change — and
  /// empty (the default) skips it entirely, byte-identical to before.
  std::vector<std::uint32_t> tenant_weights;
  /// Optional execution observer forwarded to the engine config
  /// (obs::EngineProfiler). Read-only on the schedule; nullptr (the
  /// default) keeps the engine wall-clock-free.
  sim::EngineObserver* observer = nullptr;
};

/// Sharded flash back-end: the fig2-class GC-interference workload run
/// on per-channel event cores (Tier A of the parallel layer).
///
/// Each flash channel is one shard owning its bus and its LUNs as
/// sim::Resources on that shard's private Simulator; a controller
/// shard runs the closed-loop host driver. The only cross-shard edges
/// are the ShardPlan seam: command dispatch (controller -> channel)
/// and completion routing (channel -> controller), both bounded below
/// by the batched-seam latency — which is exactly the engine's
/// conservative lookahead.
///
/// Timed op pipelines reuse the real controller's phase arithmetic
/// (flash::Timing): read = LUN(cmd+tR) then bus transfer; write = bus
/// transfer then LUN program; GC relocations and the 2 ms erase run
/// channel-locally and contend with host IO for the same LUN/bus
/// resources — background reclamation surfacing as foreground latency,
/// entirely inside one shard. Every stochastic draw on a channel shard
/// comes from that shard's flash::RngDomain stream, so the draw
/// sequence is a function of shard id alone, not of worker
/// interleaving.
class ShardedFlashSim {
 public:
  ShardedFlashSim(const Config& device_config,
                  const ShardedRunConfig& run_config);
  ~ShardedFlashSim();

  ShardedFlashSim(const ShardedFlashSim&) = delete;
  ShardedFlashSim& operator=(const ShardedFlashSim&) = delete;

  /// Issues the whole closed-loop workload and runs rounds until every
  /// IO (and all trailing GC) drains. Returns final simulated time.
  SimTime Run();

  const ShardPlan& plan() const { return plan_; }
  sim::ShardedEngine* engine() { return engine_.get(); }

  /// Host IO latency (dispatch-to-completion-delivery, seam included).
  const Histogram& latency() const { return latency_; }
  std::uint64_t ios_completed() const { return total_completed_; }

  /// Per-channel flash-op counters, summed across channels.
  std::uint64_t pages_read() const;
  std::uint64_t pages_programmed() const;
  std::uint64_t blocks_erased() const;
  std::uint64_t gc_page_moves() const;

  /// Order-sensitive digest of everything the model observed: latency
  /// histogram moments, per-channel counters, free-page levels and the
  /// final clock. Together with the engine's per-shard schedule
  /// fingerprints this is the byte-identical-schedule witness gate 7
  /// compares across worker counts.
  std::uint64_t ModelFingerprint() const;
  std::uint64_t CombinedFingerprint() const;

  /// Per-tenant observables (valid when tenant_weights is non-empty).
  std::uint64_t tenant_completed(std::size_t tenant) const {
    return tenant_completed_[tenant];
  }
  const Histogram& tenant_latency(std::size_t tenant) const {
    return tenant_latency_[tenant];
  }

 private:
  /// Per-channel shard state. Only events on that shard touch it
  /// (enforced by construction: every member function that mutates it
  /// runs from an event scheduled on the owning shard).
  struct ChannelState {
    std::uint32_t channel = 0;
    std::unique_ptr<sim::Resource> bus;
    std::vector<std::unique_ptr<sim::Resource>> units;
    Rng rng;  // this shard's RngDomain stream
    std::int64_t free_pages = 0;
    bool gc_active = false;
    std::uint32_t gc_moves_left = 0;
    std::uint32_t gc_lun = 0;
    // Counters (host + GC traffic).
    std::uint64_t reads = 0;
    std::uint64_t programs = 0;
    std::uint64_t erases = 0;
    std::uint64_t gc_moves = 0;
    std::uint64_t gc_cycles = 0;
  };

  /// Host-side per-channel bookkeeping, owned by the controller shard.
  struct HostQueue {
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    std::uint32_t inflight = 0;
  };

  // Controller-shard logic.
  void IssueIo(std::uint32_t channel);
  void OnCompletion(std::uint32_t channel, SimTime issued_at,
                    bool is_write, std::uint32_t tenant);
  /// Next tenant label by DRR over tenant_weights (no Rng draws).
  std::uint32_t NextTenant();

  // Channel-shard logic (timed pipelines).
  void StartRead(std::uint32_t channel, std::uint32_t lun,
                 SimTime issued_at, std::uint32_t tenant);
  void StartWrite(std::uint32_t channel, std::uint32_t lun,
                  SimTime issued_at, std::uint32_t tenant);
  void PostCompletion(std::uint32_t channel, SimTime issued_at,
                      bool is_write, std::uint32_t tenant);
  void MaybeStartGc(std::uint32_t channel);
  void GcStep(std::uint32_t channel);
  void GcErase(std::uint32_t channel);

  SimTime TransferNs() const {
    return config_.timing.TransferNs(config_.geometry.page_size_bytes);
  }
  std::int64_t GcWatermarkPages() const {
    return static_cast<std::int64_t>(run_.gc_watermark_blocks) *
           config_.geometry.pages_per_block;
  }

  Config config_;
  ShardedRunConfig run_;
  ShardPlan plan_;
  std::unique_ptr<sim::ShardedEngine> engine_;
  std::vector<std::unique_ptr<ChannelState>> channels_;

  // Controller-shard state.
  std::vector<HostQueue> queues_;
  Rng ctrl_rng_;
  Histogram latency_;
  std::uint64_t total_completed_ = 0;

  // Tenant-attribution state (empty when tenant_weights is empty).
  std::vector<std::uint32_t> tenant_credits_;
  std::uint32_t tenant_pos_ = 0;
  std::vector<std::uint64_t> tenant_completed_;
  std::vector<Histogram> tenant_latency_;
};

}  // namespace postblock::ssd

#endif  // POSTBLOCK_SSD_SHARDED_BACKEND_H_
