#ifndef POSTBLOCK_SSD_WRITE_BUFFER_H_
#define POSTBLOCK_SSD_WRITE_BUFFER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/types.h"
#include "ftl/ftl.h"
#include "sim/simulator.h"
#include "ssd/config.h"

namespace postblock::ssd {

/// Battery-backed controller RAM write cache — the paper's "safe cache"
/// (Myth 2, reason one): a write IO completes as soon as it hits this
/// buffer, and the controller drains it to flash in the background with
/// full placement freedom, so the host-visible cost of random and
/// sequential writes converges.
class WriteBuffer {
 public:
  WriteBuffer(sim::Simulator* sim, ftl::Ftl* ftl,
              const WriteBufferConfig& config,
              std::uint32_t num_luns);

  WriteBuffer(const WriteBuffer&) = delete;
  WriteBuffer& operator=(const WriteBuffer&) = delete;

  /// Buffers one page write. Completes after `insert_ns` once space is
  /// available (overwrites of buffered LBAs absorb in place).
  void SubmitWrite(Lba lba, std::uint64_t token,
                   std::function<void(Status)> cb);

  /// Read hit: newest buffered token for `lba`, if present.
  bool Lookup(Lba lba, std::uint64_t* token) const;

  /// Drops a buffered (not yet draining) copy — used by trim.
  void Drop(Lba lba);

  /// Completes once every buffered page is durable on flash and no
  /// insert is waiting for space.
  void Flush(std::function<void(Status)> cb);

  /// Power loss without battery: volatile contents vanish.
  void DiscardAll();

  /// Power loss with battery: contents survive, but in-flight drains
  /// were dropped with the FTL's volatile state — requeue everything.
  void RequeueAfterPowerCycle();

  std::size_t entries() const { return entries_.size(); }
  bool empty() const {
    return entries_.empty() && space_waiters_.empty();
  }
  const Counters& counters() const { return counters_; }

 private:
  struct Entry {
    std::uint64_t token = 0;
    std::uint64_t version = 0;
    bool queued = false;    // in drain_fifo_
    bool draining = false;  // FTL write in flight
    bool retried = false;   // one failed drain already burned the retry
  };

  void PumpDrain();
  void CheckFlushWaiters();

  sim::Simulator* sim_;
  ftl::Ftl* ftl_;
  WriteBufferConfig config_;
  std::uint32_t max_inflight_;

  std::unordered_map<Lba, Entry> entries_;
  std::deque<Lba> drain_fifo_;
  std::uint32_t inflight_drains_ = 0;
  std::uint64_t next_version_ = 1;

  struct WaitingInsert {
    Lba lba;
    std::uint64_t token;
    std::function<void(Status)> cb;
  };
  std::deque<WaitingInsert> space_waiters_;
  std::vector<std::function<void(Status)>> flush_waiters_;
  /// First drain failure that cost data (retry exhausted): delivered to
  /// the next flush batch instead of a false Ok, then cleared.
  Status drain_error_ = Status::Ok();

  Counters counters_;
};

}  // namespace postblock::ssd

#endif  // POSTBLOCK_SSD_WRITE_BUFFER_H_
