#include "ssd/shard_plan.h"

#include <algorithm>
#include <cassert>

namespace postblock::ssd {

SimTime ShardPlan::Lookahead() const {
  assert(!edges.empty());
  SimTime min = ~SimTime{0};
  for (const ShardEdge& e : edges) {
    min = std::min(min, e.min_latency_ns);
  }
  return min;
}

ShardPlan ShardPlan::FromConfig(const Config& config,
                                SimTime seam_coalesce_ns) {
  ShardPlan plan;
  const std::uint32_t channels = config.geometry.channels;
  plan.num_shards = channels + 1;
  plan.controller_shard = channels;
  plan.channel_shard.resize(channels);
  for (std::uint32_t c = 0; c < channels; ++c) plan.channel_shard[c] = c;
  plan.dispatch_ns = config.controller_overhead_ns + seam_coalesce_ns;
  plan.complete_ns = config.controller_overhead_ns + seam_coalesce_ns;
  plan.edges.reserve(2 * channels);
  for (std::uint32_t c = 0; c < channels; ++c) {
    plan.edges.push_back(ShardEdge{plan.controller_shard, c,
                                   plan.dispatch_ns,
                                   "dispatch.ch" + std::to_string(c)});
    plan.edges.push_back(ShardEdge{c, plan.controller_shard,
                                   plan.complete_ns,
                                   "complete.ch" + std::to_string(c)});
  }
  return plan;
}

}  // namespace postblock::ssd
