#include "ssd/device.h"

#include <memory>
#include <utility>
#include <vector>

#include "ftl/block_ftl.h"
#include "ftl/dftl.h"
#include "ftl/hybrid_ftl.h"
#include "ssd/shard_router.h"

namespace postblock::ssd {

std::unique_ptr<ftl::Ftl> MakeFtl(Controller* controller) {
  switch (controller->config().ftl) {
    case FtlKind::kPageMap:
      return std::make_unique<ftl::PageFtl>(controller);
    case FtlKind::kBlockMap:
      return std::make_unique<ftl::BlockFtl>(controller);
    case FtlKind::kHybrid:
      return std::make_unique<ftl::HybridFtl>(controller);
    case FtlKind::kDftl:
      return std::make_unique<ftl::Dftl>(controller);
    case FtlKind::kVisionAppend:
      return std::make_unique<ftl::AppendFtl>(controller);
  }
  return nullptr;
}

Device::Device(sim::Simulator* sim, const Config& config)
    : sim_(sim), config_(config), tracer_(config.tracer) {
  // Track order is part of the trace contract: the device track
  // precedes every controller track, in both ctors.
  if (tracer_ != nullptr) {
    dev_track_ = tracer_->RegisterTrack(trace::kPidHost, "ssd-device");
  }
  controller_ = std::make_unique<Controller>(sim, config_);
  Init();
}

Device::Device(ShardRouter* router, const Config& config,
               const std::vector<trace::Tracer*>& channel_tracers)
    : sim_(router->controller_sim()),
      router_(router),
      config_(config),
      tracer_(config.tracer) {
  if (tracer_ != nullptr) {
    dev_track_ = tracer_->RegisterTrack(trace::kPidHost, "ssd-device");
  }
  controller_ =
      std::make_unique<Controller>(router, config_, channel_tracers);
  Init();
}

void Device::Init() {
  ftl_ = MakeFtl(controller_.get());
  page_ftl_ = dynamic_cast<ftl::PageFtl*>(ftl_.get());
  append_ftl_ = dynamic_cast<ftl::AppendFtl*>(ftl_.get());
  if (config_.write_buffer.pages > 0) {
    write_buffer_ = std::make_unique<WriteBuffer>(
        sim_, ftl_.get(), config_.write_buffer,
        config_.geometry.luns());
  }
  metrics_ = config_.metrics;
  if (metrics_ != nullptr) {
    m_requests_ = metrics_->AddCounter("dev.requests");
    m_completions_ = metrics_->AddCounter("dev.completions");
    m_read_lat_ = metrics_->AddHistogram("dev.read_lat_ns");
    m_write_lat_ = metrics_->AddHistogram("dev.write_lat_ns");
    metrics_->AddGauge("dev.write_amplification",
                       [this] { return WriteAmplification(); });
    metrics_->AddGauge("dev.write_buffer_pages", [this] {
      return write_buffer_ == nullptr
                 ? 0.0
                 : static_cast<double>(write_buffer_->entries());
    });
    metrics_->AddPolledCounter("dev.buffer_read_hits", [this] {
      return counters_.Get("buffer_read_hits");
    });
    ftl_->RegisterMetrics(metrics_);
  }
}

void Device::Submit(blocklayer::IoRequest request) {
  Admit(std::move(request), 0);
}

void Device::SubmitBatch(std::vector<blocklayer::IoRequest> batch) {
  // One doorbell ring: the firmware fetches the batch's SQ entries in
  // order, so the i-th command's admission is offset by i fetch costs —
  // but the fixed controller overhead is paid once for the whole ring.
  counters_.Increment("doorbell_rings");
  counters_.Add("doorbell_cmds", batch.size());
  SimTime offset = 0;
  for (blocklayer::IoRequest& r : batch) {
    Admit(std::move(r), offset);
    offset += config_.doorbell_cmd_ns;
  }
}

void Device::Admit(blocklayer::IoRequest request, SimTime admit_delay) {
  counters_.Increment("requests");
  if (metrics_ != nullptr) metrics_->Increment(m_requests_);
  counters_.Increment(std::string("requests_") +
                      blocklayer::IoOpName(request.op));
  if (request.op == blocklayer::IoOp::kWrite &&
      request.tokens.size() != request.nblocks) {
    sim_->Schedule(0, [request = std::move(request)]() {
      request.on_complete(blocklayer::IoResult{
          Status::InvalidArgument("write token count != nblocks"), {}});
    });
    return;
  }
  if (request.nblocks == 0) {
    sim_->Schedule(0, [request = std::move(request)]() {
      request.on_complete(blocklayer::IoResult{Status::Ok(), {}});
    });
    return;
  }
  if (request.lba + request.nblocks > num_blocks()) {
    sim_->Schedule(0, [request = std::move(request)]() {
      request.on_complete(blocklayer::IoResult{
          Status::OutOfRange("request beyond device"), {}});
    });
    return;
  }
  // Trace identity: mint the root span if no layer above is tracing
  // this request; admission cost becomes a kSchedule span on the device
  // track either way.
  bool root = false;
  const SimTime submit_t = sim_->Now();
  const SimTime admit_cost = config_.controller_overhead_ns + admit_delay;
  if (Traced()) {
    if (request.span == 0) {
      request.span = tracer_->NewSpan();
      root = true;
    }
    tracer_->Record(trace::Stage::kSchedule, blocklayer::OriginOf(request.op),
                    request.span, 0, dev_track_, submit_t,
                    submit_t + admit_cost, request.lba);
  }

  // Firmware admission cost, then fan out page ops. Requests still in
  // admission when power is cut are dropped whole.
  auto req = std::make_shared<blocklayer::IoRequest>(std::move(request));
  const std::uint64_t epoch = epoch_;
  sim_->Schedule(admit_cost,
                 [this, epoch, root, submit_t, req = std::move(req)]() {
                   if (epoch != epoch_) return;
                   SubmitPageOps(req, root, submit_t);
                 });
}

void Device::SubmitPageOps(
    const std::shared_ptr<blocklayer::IoRequest>& req, bool root,
    SimTime submit_t) {
  const blocklayer::IoRequest& request = *req;
  const SimTime start = sim_->Now();
  struct Tracker {
    std::uint32_t remaining;
    Status first_error;
    std::vector<std::uint64_t> tokens;
  };
  auto tracker = std::make_shared<Tracker>();
  tracker->remaining = request.nblocks;
  tracker->tokens.assign(
      request.op == blocklayer::IoOp::kRead ? request.nblocks : 0, 0);

  auto on_page = [this, tracker, req, start, root,
                  submit_t](std::uint32_t index, Status st,
                            std::uint64_t token) {
    const blocklayer::IoRequest& request = *req;
    if (!st.ok() && tracker->first_error.ok()) tracker->first_error = st;
    if (request.op == blocklayer::IoOp::kRead &&
        index < tracker->tokens.size()) {
      tracker->tokens[index] = token;
    }
    if (--tracker->remaining > 0) return;
    const SimTime latency = sim_->Now() - start;
    switch (request.op) {
      case blocklayer::IoOp::kRead:
        read_latency_.Record(latency);
        if (metrics_ != nullptr) metrics_->Record(m_read_lat_, latency);
        break;
      case blocklayer::IoOp::kWrite:
        write_latency_.Record(latency);
        if (metrics_ != nullptr) metrics_->Record(m_write_lat_, latency);
        break;
      default:
        break;
    }
    counters_.Increment("completions");
    if (metrics_ != nullptr) metrics_->Increment(m_completions_);
    // Completion routing: a multi-queue submitter stamps its software
    // queue id on the callback; attribute the CQ post to that queue.
    const std::uint16_t qid = request.on_complete.queue_id;
    if (qid != blocklayer::IoCallback::kNoQueue) {
      if (cq_posts_.size() <= qid) cq_posts_.resize(qid + 1, 0);
      ++cq_posts_[qid];
    }
    if (root && tracer_ != nullptr) {
      tracer_->Record(trace::Stage::kIo,
                      blocklayer::OriginOf(request.op), request.span, 0,
                      dev_track_, submit_t, sim_->Now(), request.lba);
    }
    request.on_complete(
        blocklayer::IoResult{tracker->first_error,
                             std::move(tracker->tokens)});
  };

  // Per-page trace context: origin always rides along (it feeds the
  // always-on GC-stall counters); spans only exist while tracing is
  // enabled. Multi-page requests get child spans so per-page flash work
  // still nests under the request in the trace.
  const trace::Origin origin = blocklayer::OriginOf(request.op);
  const bool fanout = Traced() && request.span != 0 && request.nblocks > 1;
  auto page_ctx = [this, &request, origin, fanout]() {
    trace::Ctx ctx{request.span, 0, origin};
    if (fanout) {
      ctx.span = tracer_->NewSpan();
      ctx.parent = request.span;
    }
    return ctx;
  };

  switch (request.op) {
    case blocklayer::IoOp::kRead:
      for (std::uint32_t i = 0; i < request.nblocks; ++i) {
        const Lba lba = request.lba + i;
        std::uint64_t buffered = 0;
        if (write_buffer_ != nullptr &&
            write_buffer_->Lookup(lba, &buffered)) {
          counters_.Increment("buffer_read_hits");
          if (Traced() && request.span != 0) {
            // Served from the write cache: a kMap blip, no flash work.
            tracer_->Record(trace::Stage::kMap, origin, request.span, 0,
                            dev_track_, sim_->Now(),
                            sim_->Now() + config_.write_buffer.insert_ns,
                            lba);
          }
          sim_->Schedule(config_.write_buffer.insert_ns,
                         [on_page, i, buffered]() {
                           on_page(i, Status::Ok(), buffered);
                         });
          continue;
        }
        ftl_->Read(
            lba,
            [on_page, i](StatusOr<std::uint64_t> res) {
              if (res.ok()) {
                on_page(i, Status::Ok(), *res);
              } else {
                on_page(i, res.status(), 0);
              }
            },
            page_ctx());
      }
      break;
    case blocklayer::IoOp::kWrite:
      for (std::uint32_t i = 0; i < request.nblocks; ++i) {
        const Lba lba = request.lba + i;
        const std::uint64_t token = request.tokens[i];
        if (write_buffer_ != nullptr) {
          // Buffered writes complete at insert; the deferred drain is
          // background work no single host IO can claim, so spans stop
          // here and the drain's flash ops run under the default
          // (kMeta) context.
          write_buffer_->SubmitWrite(lba, token, [on_page, i](Status st) {
            on_page(i, std::move(st), 0);
          });
        } else {
          ftl_->Write(
              lba, token,
              [on_page, i](Status st) { on_page(i, std::move(st), 0); },
              page_ctx());
        }
      }
      break;
    case blocklayer::IoOp::kTrim:
      for (std::uint32_t i = 0; i < request.nblocks; ++i) {
        const Lba lba = request.lba + i;
        if (write_buffer_ != nullptr) write_buffer_->Drop(lba);
        ftl_->Trim(
            lba,
            [on_page, i](Status st) { on_page(i, std::move(st), 0); },
            page_ctx());
      }
      break;
    case blocklayer::IoOp::kFlush: {
      // Single logical page op regardless of nblocks.
      tracker->remaining = 1;
      if (write_buffer_ != nullptr) {
        write_buffer_->Flush(
            [on_page](Status st) { on_page(0, std::move(st), 0); });
      } else {
        sim_->Schedule(0, [on_page]() { on_page(0, Status::Ok(), 0); });
      }
      break;
    }
  }
}

bool Device::Supports(host::CommandKind kind) const {
  switch (kind) {
    case host::CommandKind::kRead:
    case host::CommandKind::kWrite:
    case host::CommandKind::kTrim:
      // A vision-append device has no logical address space to offer:
      // the block vocabulary is honestly refused, not emulated.
      return append_ftl_ == nullptr;
    case host::CommandKind::kFlush:
    case host::CommandKind::kHint:
      return true;
    case host::CommandKind::kAtomicGroup:
      // Atomic groups need the page-mapping FTL's commit marker.
      return page_ftl_ != nullptr;
    case host::CommandKind::kNamelessWrite:
    case host::CommandKind::kNamelessRead:
    case host::CommandKind::kNamelessFree:
      // Native under vision-append; emulated over hidden LBA slots on
      // the page-mapping FTL.
      return append_ftl_ != nullptr || page_ftl_ != nullptr;
  }
  return false;
}

host::DeviceCaps Device::Caps() const {
  host::DeviceCaps caps = host::HostInterface::Caps();
  if (append_ftl_ != nullptr) {
    caps.append_regions = config_.append_regions;
  }
  caps.mapping_table_bytes = ftl_->MappingTableBytes();
  return caps;
}

void Device::SetMigrationHandler(host::MigrationHandler handler) {
  migration_handler_ = std::move(handler);
  if (migration_handler_) EnsureMigrationListener();
}

void Device::EnsureMigrationListener() {
  if (migration_listener_registered_) return;
  if (append_ftl_ != nullptr) {
    append_ftl_->SetMigrationListener(
        [this](std::uint64_t old_name, std::uint64_t new_name) {
          counters_.Increment("nameless_migrations");
          if (migration_handler_) migration_handler_(old_name, new_name);
        });
    migration_listener_registered_ = true;
  } else if (page_ftl_ != nullptr) {
    page_ftl_->SetMigrationListener(
        [this](Lba lba, flash::Ppa old_ppa, flash::Ppa new_ppa) {
          OnPageFtlMigration(lba, old_ppa, new_ppa);
        });
    migration_listener_registered_ = true;
  }
}

void Device::OnPageFtlMigration(Lba lba, const flash::Ppa& old_ppa,
                                const flash::Ppa& new_ppa) {
  // GC/WL moved some page; only named slots concern us, and only if the
  // host's name still points where the FTL moved from (a slot rewritten
  // mid-flight keeps its newer name).
  auto slot = slot_to_name_.find(lba);
  if (slot == slot_to_name_.end()) return;
  const std::uint64_t old_name = old_ppa.Flatten(config_.geometry);
  if (slot->second != old_name) return;
  const std::uint64_t new_name = new_ppa.Flatten(config_.geometry);
  name_to_slot_.erase(old_name);
  name_to_slot_[new_name] = lba;
  slot->second = new_name;
  counters_.Increment("nameless_migrations");
  if (migration_handler_) migration_handler_(old_name, new_name);
}

void Device::Execute(host::Command cmd) {
  switch (cmd.kind) {
    case host::CommandKind::kAtomicGroup:
      ExecuteAtomicGroup(std::move(cmd));
      return;
    case host::CommandKind::kNamelessWrite:
      ExecuteNamelessWrite(std::move(cmd));
      return;
    case host::CommandKind::kNamelessRead:
      ExecuteNamelessRead(std::move(cmd));
      return;
    case host::CommandKind::kNamelessFree:
      ExecuteNamelessFree(std::move(cmd));
      return;
    case host::CommandKind::kHint:
      counters_.Increment("hints");
      if (cmd.on_complete) {
        cmd.on_complete(blocklayer::IoResult{Status::Ok(), {}});
      }
      return;
    default:
      if (append_ftl_ != nullptr &&
          cmd.kind != host::CommandKind::kFlush) {
        // No logical address space: typed refusal, never a silent drop.
        counters_.Increment("lba_commands_refused");
        if (cmd.on_complete) {
          cmd.on_complete(blocklayer::IoResult{
              Status::Unimplemented(
                  "vision-append device has no logical address space"),
              {}});
        }
        return;
      }
      // Block-expressible kinds lower onto Submit via the base class.
      blocklayer::BlockDevice::Execute(std::move(cmd));
      return;
  }
}

void Device::ExecuteAtomicGroup(host::Command cmd) {
  if (page_ftl_ == nullptr) {
    if (cmd.on_complete) {
      cmd.on_complete(blocklayer::IoResult{
          Status::Unimplemented(
              "atomic groups require the page-mapping FTL"),
          {}});
    }
    return;
  }
  counters_.Increment("atomic_groups");
  // The FTL callback is a copyable std::function; box the move-only
  // completion so the bridge stays copyable.
  auto done = std::make_shared<blocklayer::IoCallback>(
      std::move(cmd.on_complete));
  page_ftl_->WriteAtomic(
      std::move(cmd.group),
      [done](Status st) {
        if (*done) (*done)(blocklayer::IoResult{std::move(st), {}});
      },
      trace::Ctx{cmd.span, 0, trace::Origin::kHostWrite});
}

void Device::ExecuteNamelessWrite(host::Command cmd) {
  if (append_ftl_ != nullptr) {
    // Native physical append: the FTL picks the location, issues the
    // name, and persists the command's OOB owner stamp (lba = owner
    // tag, nblocks = owner epoch; 0 = unstamped).
    counters_.Increment("nameless_writes");
    EnsureMigrationListener();
    const std::uint64_t token = cmd.tokens.empty() ? 0 : cmd.tokens[0];
    const Lba owner =
        cmd.nblocks == 0 ? flash::kNamelessLba : cmd.lba;
    auto done = std::make_shared<blocklayer::IoCallback>(
        std::move(cmd.on_complete));
    append_ftl_->NamelessWrite(
        token, owner, cmd.nblocks, cmd.stream,
        [done](StatusOr<std::uint64_t> res) {
          if (!*done) return;
          if (res.ok()) {
            (*done)(blocklayer::IoResult{Status::Ok(), {*res}});
          } else {
            (*done)(blocklayer::IoResult{res.status(), {}});
          }
        },
        trace::Ctx{cmd.span, 0, trace::Origin::kHostWrite});
    return;
  }
  if (page_ftl_ == nullptr) {
    if (cmd.on_complete) {
      cmd.on_complete(blocklayer::IoResult{
          Status::Unimplemented(
              "nameless writes require the page-mapping or "
              "vision-append FTL"),
          {}});
    }
    return;
  }
  // Emulation over the page map: park the unnamed page in a hidden LBA
  // slot (recycled first, lowest never-used otherwise) and report the
  // slot's physical address as the name. The slot map lets the device
  // resolve later named reads/frees and track GC moves.
  EnsureMigrationListener();
  Lba lba;
  if (!nameless_free_.empty()) {
    lba = nameless_free_.front();
    nameless_free_.pop_front();
  } else if (nameless_next_ < num_blocks()) {
    lba = nameless_next_++;
  } else {
    if (cmd.on_complete) {
      cmd.on_complete(blocklayer::IoResult{
          Status::ResourceExhausted("no nameless slots left"), {}});
    }
    return;
  }
  counters_.Increment("nameless_writes");
  const std::uint64_t token = cmd.tokens.empty() ? 0 : cmd.tokens[0];
  auto done = std::make_shared<blocklayer::IoCallback>(
      std::move(cmd.on_complete));
  page_ftl_->Write(
      lba, token,
      [this, done, lba](Status st) {
        if (!st.ok()) {
          nameless_free_.push_back(lba);
          if (*done) (*done)(blocklayer::IoResult{std::move(st), {}});
          return;
        }
        std::uint64_t name = 0;
        if (auto ppa = page_ftl_->Locate(lba)) {
          name = ppa->Flatten(config_.geometry);
          auto old = slot_to_name_.find(lba);
          if (old != slot_to_name_.end()) name_to_slot_.erase(old->second);
          name_to_slot_[name] = lba;
          slot_to_name_[lba] = name;
        }
        if (*done) {
          (*done)(blocklayer::IoResult{Status::Ok(), {name}});
        }
      },
      trace::Ctx{cmd.span, 0, trace::Origin::kHostWrite});
}

void Device::ExecuteNamelessRead(host::Command cmd) {
  auto done = std::make_shared<blocklayer::IoCallback>(
      std::move(cmd.on_complete));
  auto complete = [done](StatusOr<std::uint64_t> res) {
    if (!*done) return;
    if (res.ok()) {
      (*done)(blocklayer::IoResult{Status::Ok(), {*res}});
    } else {
      (*done)(blocklayer::IoResult{res.status(), {}});
    }
  };
  if (append_ftl_ != nullptr) {
    counters_.Increment("nameless_reads");
    append_ftl_->NamelessRead(
        cmd.lba, complete,
        trace::Ctx{cmd.span, 0, trace::Origin::kHostRead});
    return;
  }
  if (page_ftl_ == nullptr) {
    sim_->Schedule(0, [complete]() {
      complete(Status::Unimplemented(
          "nameless reads require the page-mapping or vision-append "
          "FTL"));
    });
    return;
  }
  counters_.Increment("nameless_reads");
  auto it = name_to_slot_.find(cmd.lba);
  if (it == name_to_slot_.end()) {
    const std::uint64_t epoch = epoch_;
    sim_->Schedule(0, [this, epoch, complete]() {
      if (epoch != epoch_) return;
      complete(Status::NotFound("stale name: page freed or migrated"));
    });
    return;
  }
  page_ftl_->Read(it->second, complete,
                  trace::Ctx{cmd.span, 0, trace::Origin::kHostRead});
}

void Device::ExecuteNamelessFree(host::Command cmd) {
  auto done = std::make_shared<blocklayer::IoCallback>(
      std::move(cmd.on_complete));
  auto complete = [done](Status st) {
    if (*done) (*done)(blocklayer::IoResult{std::move(st), {}});
  };
  if (append_ftl_ != nullptr) {
    counters_.Increment("nameless_frees");
    append_ftl_->NamelessFree(
        cmd.lba, complete,
        trace::Ctx{cmd.span, 0, trace::Origin::kHostTrim});
    return;
  }
  if (page_ftl_ == nullptr) {
    sim_->Schedule(0, [complete]() {
      complete(Status::Unimplemented(
          "nameless frees require the page-mapping or vision-append "
          "FTL"));
    });
    return;
  }
  counters_.Increment("nameless_frees");
  auto it = name_to_slot_.find(cmd.lba);
  if (it == name_to_slot_.end()) {
    const std::uint64_t epoch = epoch_;
    sim_->Schedule(0, [this, epoch, complete]() {
      if (epoch != epoch_) return;
      complete(Status::NotFound("stale name: page freed or migrated"));
    });
    return;
  }
  const Lba slot = it->second;
  name_to_slot_.erase(it);
  slot_to_name_.erase(slot);
  page_ftl_->Trim(
      slot,
      [this, complete, slot](Status st) {
        if (st.ok()) nameless_free_.push_back(slot);
        complete(std::move(st));
      },
      trace::Ctx{cmd.span, 0, trace::Origin::kHostTrim});
}

Status Device::PowerCycle() {
  if (page_ftl_ == nullptr && append_ftl_ == nullptr) {
    return Status::Unimplemented(
        "power-cycle recovery requires the page-mapping or "
        "vision-append FTL");
  }
  counters_.Increment("power_cycles");
  ++epoch_;
  if (write_buffer_ != nullptr && !config_.write_buffer.battery_backed) {
    write_buffer_->DiscardAll();
  }
  if (append_ftl_ != nullptr) {
    // Names are physical: nothing device-side to rebuild beyond the
    // FTL's per-block state. The *host* rescans via LiveNames().
    PB_RETURN_IF_ERROR(append_ftl_->PowerCycle());
    return Status::Ok();
  }
  PB_RETURN_IF_ERROR(page_ftl_->PowerCycle());
  // The nameless slot maps are device DRAM: lost with power, rebuilt
  // from the recovered L2P (the name of a surviving slot is wherever
  // the OOB scan says it lives now; unmapped slots return to the free
  // pool in ascending order — deterministic).
  name_to_slot_.clear();
  slot_to_name_.clear();
  nameless_free_.clear();
  for (Lba lba = 0; lba < nameless_next_; ++lba) {
    if (auto ppa = page_ftl_->Locate(lba)) {
      const std::uint64_t name = ppa->Flatten(config_.geometry);
      name_to_slot_[name] = lba;
      slot_to_name_[lba] = name;
    } else {
      nameless_free_.push_back(lba);
    }
  }
  // Battery-backed buffers keep their contents; requeue them against
  // the rebuilt FTL (their old drain completions died with the epoch).
  if (write_buffer_ != nullptr && config_.write_buffer.battery_backed) {
    write_buffer_->RequeueAfterPowerCycle();
  }
  return Status::Ok();
}

}  // namespace postblock::ssd
