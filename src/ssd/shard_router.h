#ifndef POSTBLOCK_SSD_SHARD_ROUTER_H_
#define POSTBLOCK_SSD_SHARD_ROUTER_H_

#include <cassert>
#include <cstdint>
#include <utility>

#include "common/types.h"
#include "sim/sharded_engine.h"
#include "sim/simulator.h"
#include "ssd/shard_plan.h"

namespace postblock::ssd {

/// Binds a ShardPlan to a live sim::ShardedEngine: the only object that
/// may move device work across shards. Dispatch() carries a controller
/// decision onto a channel shard at +dispatch_ns; Complete() carries a
/// finished channel pipeline back at +complete_ns. Both prices come
/// from the plan (controller overhead + the batched doorbell/coalescing
/// grid), so the engine's lookahead stays a modeling statement — the
/// seam costs what the firmware seam costs, and the rendezvous window
/// is exactly that latency (DESIGN.md §4f/§4i).
///
/// The router is pure plumbing: no state of its own, so it is safe to
/// call from any shard's event context as long as the caller respects
/// direction (Dispatch from the controller shard only, Complete from
/// the named channel's shard only — the engine asserts the lookahead
/// contract against the *sending* shard's clock).
class ShardRouter {
 public:
  ShardRouter(sim::ShardedEngine* engine, ShardPlan plan)
      : engine_(engine), plan_(std::move(plan)) {
    assert(engine_->num_shards() == plan_.num_shards);
    assert(engine_->config().lookahead <= plan_.Lookahead());
  }

  sim::ShardedEngine* engine() { return engine_; }
  const ShardPlan& plan() const { return plan_; }

  sim::Simulator* controller_sim() {
    return engine_->shard(plan_.controller_shard);
  }
  sim::Simulator* channel_sim(std::uint32_t channel) {
    return engine_->shard(plan_.channel_shard[channel]);
  }

  /// Controller shard -> channel shard: firmware command dispatch.
  /// Call from an event on the controller shard (or during setup).
  template <typename F>
  void Dispatch(std::uint32_t channel, F&& f) {
    engine_->Post(plan_.controller_shard, plan_.channel_shard[channel],
                  controller_sim()->Now() + plan_.dispatch_ns,
                  std::forward<F>(f));
  }

  /// Channel shard -> controller shard: completion routing. Call from
  /// an event on `channel`'s shard.
  template <typename F>
  void Complete(std::uint32_t channel, F&& f) {
    engine_->Post(plan_.channel_shard[channel], plan_.controller_shard,
                  channel_sim(channel)->Now() + plan_.complete_ns,
                  std::forward<F>(f));
  }

 private:
  sim::ShardedEngine* engine_;
  ShardPlan plan_;
};

}  // namespace postblock::ssd

#endif  // POSTBLOCK_SSD_SHARD_ROUTER_H_
