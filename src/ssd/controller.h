#ifndef POSTBLOCK_SSD_CONTROLLER_H_
#define POSTBLOCK_SSD_CONTROLLER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/histogram.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/statusor.h"
#include "flash/chip.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "ssd/channel.h"
#include "ssd/config.h"

namespace postblock::ssd {

/// The timed flash back-end (Figure 2, lower half): owns the flash
/// array, one bus Resource per channel and one serial Resource per LUN,
/// and composes them into timed page operations:
///
///   read:    [LUN: cmd + array-read] then [channel: data transfer out]
///   program: [channel: data transfer in] then [LUN: array program]
///   erase:   [channel: cmd] then [LUN: block erase]
///
/// The asymmetry is the mechanism behind the paper's Figure 1: parallel
/// reads pile up on the shared channel (channel-bound) while parallel
/// programs overlap their long array-program phases (chip-bound).
class Controller {
 public:
  Controller(sim::Simulator* sim, const Config& config);

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  using ReadCallback = std::function<void(StatusOr<flash::PageData>)>;
  using OpCallback = std::function<void(Status)>;

  /// Timed page read through LUN + channel.
  void ReadPage(const flash::Ppa& ppa, ReadCallback on_done);

  /// Timed page program. Array state mutates when the program phase
  /// finishes; constraint violations surface in the callback status.
  void ProgramPage(const flash::Ppa& ppa, const flash::PageData& data,
                   OpCallback on_done);

  /// Timed block erase.
  void EraseBlock(const flash::BlockAddr& addr, OpCallback on_done);

  /// Copyback (ONFI internal data move): reads `src` into the plane's
  /// page register and programs it to `dst` without crossing the
  /// channel — the chips' native cheap path for GC relocation. Both
  /// pages must live on the same plane of the same LUN; the data never
  /// leaves the die (so no ECC scrub — real controllers alternate
  /// copyback with read-verify; modeled here as error-model-free).
  void CopybackPage(const flash::Ppa& src, const flash::Ppa& dst,
                    OpCallback on_done);

  sim::Simulator* sim() { return sim_; }
  const Config& config() const { return config_; }
  flash::FlashArray* flash() { return &flash_; }

  Channel* channel(std::uint32_t index) { return channels_[index].get(); }
  /// The serial execution unit for an address: the LUN, or — with
  /// Config::plane_parallelism — the plane within it.
  sim::Resource* unit_for(const flash::Ppa& ppa) {
    return units_[UnitIndex(ppa.GlobalLun(config_.geometry), ppa.plane)]
        .get();
  }
  sim::Resource* unit_for(const flash::BlockAddr& a) {
    return units_[UnitIndex(a.GlobalLun(config_.geometry), a.plane)].get();
  }
  sim::Resource* lun(std::uint32_t global_lun) {
    return units_[UnitIndex(global_lun, 0)].get();
  }
  std::uint32_t num_channels() const {
    return static_cast<std::uint32_t>(channels_.size());
  }
  std::uint32_t num_units() const {
    return static_cast<std::uint32_t>(units_.size());
  }

  /// Device-level op latency distributions (queueing included).
  const Histogram& read_latency() const { return read_latency_; }
  const Histogram& program_latency() const { return program_latency_; }
  const Histogram& erase_latency() const { return erase_latency_; }

  const Counters& counters() const { return flash_.counters(); }

  /// Total flash energy consumed so far (nanojoules): every array
  /// read/program/erase plus bus transfers, GC traffic included.
  std::uint64_t EnergyNj() const {
    return flash_.counters().Get("energy_nj");
  }

  /// Power cut: every in-flight operation dies without touching the
  /// cells (a real interrupted program/erase leaves garbage; we model
  /// the stronger "nothing happened", which recovery code must already
  /// tolerate) and without invoking its callback. Channel/LUN resources
  /// are still released so the powered-back-up controller can operate.
  void PowerCycle() { ++epoch_; }

 private:
  /// Per-operation state, pooled and recycled. Scheduling lambdas on the
  /// read/program/copyback/erase paths capture only {this, Op*}, which
  /// keeps them inside InplaceCallback's inline buffer — the controller
  /// schedules millions of events per simulated second without touching
  /// the allocator.
  struct Op {
    flash::Ppa src;
    flash::Ppa dst;  // copyback destination
    flash::PageData data;
    SimTime start = 0;
    std::uint64_t epoch = 0;
    sim::Resource* lun = nullptr;
    Channel* chan = nullptr;
    ReadCallback read_cb;
    OpCallback op_cb;
  };

  Op* AcquireOp();
  void ReleaseOp(Op* op);

  void ReadArrayPhase(Op* op);
  void ReadTransferPhase(Op* op);
  void FinishRead(Op* op);
  void ProgramArrayPhase(Op* op);
  void FinishProgram(Op* op);
  void CopybackBusyPhase(Op* op);
  void FinishCopyback(Op* op);
  void EraseBusyPhase(Op* op);
  void FinishErase(Op* op);

  std::uint32_t UnitIndex(std::uint32_t global_lun,
                          std::uint32_t plane) const {
    return global_lun * units_per_lun_ + plane % units_per_lun_;
  }

  sim::Simulator* sim_;
  Config config_;
  flash::FlashArray flash_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::uint32_t units_per_lun_ = 1;
  std::vector<std::unique_ptr<sim::Resource>> units_;
  std::uint64_t epoch_ = 0;

  std::vector<std::unique_ptr<Op>> ops_;  // owns every Op ever created
  std::vector<Op*> op_free_;              // recycled records

  Histogram read_latency_;
  Histogram program_latency_;
  Histogram erase_latency_;
};

}  // namespace postblock::ssd

#endif  // POSTBLOCK_SSD_CONTROLLER_H_
