#ifndef POSTBLOCK_SSD_CONTROLLER_H_
#define POSTBLOCK_SSD_CONTROLLER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/statusor.h"
#include "flash/chip.h"
#include "metrics/metrics.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "ssd/channel.h"
#include "ssd/config.h"
#include "trace/trace.h"
#include "trace/tracer.h"

namespace postblock::ssd {

class ShardRouter;

/// The timed flash back-end (Figure 2, lower half): owns the flash
/// array, one bus Resource per channel and one serial Resource per LUN,
/// and composes them into timed page operations:
///
///   read:    [LUN: cmd + array-read] then [channel: data transfer out]
///   program: [channel: data transfer in] then [LUN: array program]
///   erase:   [channel: cmd] then [LUN: block erase]
///
/// The asymmetry is the mechanism behind the paper's Figure 1: parallel
/// reads pile up on the shared channel (channel-bound) while parallel
/// programs overlap their long array-program phases (chip-bound).
///
/// Two execution modes share every phase method:
///
///   single-sim (first ctor): channels, units and the firmware all live
///   on one Simulator — the pre-existing behaviour, event-for-event.
///
///   sharded (second ctor): the firmware (flash array, FTL callbacks,
///   op pool, latency accounting, reliability state) stays on the
///   plan's controller shard, while each channel's bus Resource, unit
///   Resources and GC occupancy clocks live on that channel's shard.
///   Ops cross the seam exactly twice — ShardRouter::Dispatch after the
///   controller stamps the op, ShardRouter::Complete after the timed
///   pipeline releases its unit — so all shared mutable state remains
///   single-shard and the committed schedule is worker-count invariant
///   (DESIGN.md §4i has the full ownership table).
class Controller {
 public:
  Controller(sim::Simulator* sim, const Config& config);

  /// Sharded mode: timed pipelines on per-channel shards, firmware on
  /// the controller shard. `channel_tracers` (optional) gives channel
  /// shard c its own trace ring — the shared config tracer only ever
  /// records from the controller shard, so per-unit timeline events
  /// need per-shard rings (pass none to skip them). config.metrics must
  /// be null: the registry's polled gauges read channel-shard state.
  Controller(ShardRouter* router, const Config& config,
             const std::vector<trace::Tracer*>& channel_tracers = {});

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  using ReadCallback = std::function<void(StatusOr<flash::PageData>)>;
  using OpCallback = std::function<void(Status)>;

  /// Timed page read through LUN + channel. `ctx` ties the op to a
  /// trace span and names its originator (host read vs GC vs ...), the
  /// input to GC-stall attribution.
  void ReadPage(const flash::Ppa& ppa, ReadCallback on_done,
                trace::Ctx ctx = {});

  /// Timed page program. Array state mutates when the program phase
  /// finishes; constraint violations surface in the callback status.
  void ProgramPage(const flash::Ppa& ppa, const flash::PageData& data,
                   OpCallback on_done, trace::Ctx ctx = {});

  /// Timed block erase.
  void EraseBlock(const flash::BlockAddr& addr, OpCallback on_done,
                  trace::Ctx ctx = {});

  /// Copyback (ONFI internal data move): reads `src` into the plane's
  /// page register and programs it to `dst` without crossing the
  /// channel — the chips' native cheap path for GC relocation. Both
  /// pages must live on the same plane of the same LUN; the data never
  /// leaves the die (so no ECC scrub — real controllers alternate
  /// copyback with read-verify; modeled here as error-model-free).
  void CopybackPage(const flash::Ppa& src, const flash::Ppa& dst,
                    OpCallback on_done, trace::Ctx ctx = {});

  sim::Simulator* sim() { return sim_; }
  const Config& config() const { return config_; }
  flash::FlashArray* flash() { return &flash_; }

  Channel* channel(std::uint32_t index) { return channels_[index].get(); }
  /// The serial execution unit for an address: the LUN, or — with
  /// Config::plane_parallelism — the plane within it.
  sim::Resource* unit_for(const flash::Ppa& ppa) {
    return units_[UnitIndex(ppa.GlobalLun(config_.geometry), ppa.plane)]
        .get();
  }
  sim::Resource* unit_for(const flash::BlockAddr& a) {
    return units_[UnitIndex(a.GlobalLun(config_.geometry), a.plane)].get();
  }
  sim::Resource* lun(std::uint32_t global_lun) {
    return units_[UnitIndex(global_lun, 0)].get();
  }
  std::uint32_t num_channels() const {
    return static_cast<std::uint32_t>(channels_.size());
  }
  std::uint32_t num_units() const {
    return static_cast<std::uint32_t>(units_.size());
  }

  /// Device-level op latency distributions (queueing included).
  const Histogram& read_latency() const { return read_latency_; }
  const Histogram& program_latency() const { return program_latency_; }
  const Histogram& erase_latency() const { return erase_latency_; }

  const Counters& counters() const { return flash_.counters(); }

  /// Total flash energy consumed so far (nanojoules): every array
  /// read/program/erase plus bus transfers, GC traffic included.
  std::uint64_t EnergyNj() const {
    return flash_.counters().Get("energy_nj");
  }

  trace::Tracer* tracer() { return tracer_; }
  metrics::MetricRegistry* metrics() { return metrics_; }

  // --- Reliability layer (Myth 1: error management at the SSD level) --
  /// Fires when a physical block crosses the correctable-read
  /// threshold: the FTL should refresh it (relocate live data) before
  /// its errors become uncorrectable. Called at most once per block
  /// between erases, from a read-completion context.
  using RefreshListener = std::function<void(const flash::BlockAddr&)>;
  void SetRefreshListener(RefreshListener cb) { refresh_ = std::move(cb); }

  /// True once any LUN has exhausted its bad-block spare budget: the
  /// device fails writes (ResourceExhausted) but keeps serving reads —
  /// the fail-safe real SSDs implement, never UB.
  bool read_only() const { return read_only_; }
  std::uint32_t spare_blocks(std::uint32_t global_lun) const {
    return global_lun < spares_.size() ? spares_[global_lun] : 0;
  }
  std::uint64_t spare_blocks_total() const {
    std::uint64_t total = 0;
    for (std::uint32_t s : spares_) total += s;
    return total;
  }
  /// Blocks retired by erase failure, as observed at the controller —
  /// cross-checks flash counters "erase_failures" and the FTLs'
  /// "blocks_retired".
  std::uint64_t blocks_retired() const { return blocks_retired_; }
  std::uint64_t read_retries() const { return read_retries_; }
  /// Trace track of a serial execution unit (for FTL instrumentation
  /// that wants to annotate a LUN's timeline).
  std::uint32_t unit_track(std::uint32_t unit) const {
    return unit_tracks_.empty() ? 0 : unit_tracks_[unit];
  }
  std::uint32_t UnitIndexFor(const flash::Ppa& ppa) const {
    return UnitIndex(ppa.GlobalLun(config_.geometry), ppa.plane);
  }

  /// Nanoseconds host reads/writes spent waiting on units or channel
  /// buses *because* GC/WL work held them — the paper's Fig. 2
  /// interference, isolated. Always maintained (cheap integer math),
  /// tracer or not, but only nonzero once ops carry origins (i.e. a
  /// tracer is attached to the owning Device/stack).
  std::uint64_t GcStallReadNs() const;
  std::uint64_t GcStallWriteNs() const;

  /// Power cut: every in-flight operation dies without touching the
  /// cells (a real interrupted program/erase leaves garbage; we model
  /// the stronger "nothing happened", which recovery code must already
  /// tolerate) and without invoking its callback. Channel/LUN resources
  /// are still released so the powered-back-up controller can operate.
  void PowerCycle() { ++epoch_; }

 private:
  /// Per-operation state, pooled and recycled. Scheduling lambdas on the
  /// read/program/copyback/erase paths capture only {this, Op*}, which
  /// keeps them inside InplaceCallback's inline buffer — the controller
  /// schedules millions of events per simulated second without touching
  /// the allocator.
  struct Op {
    flash::Ppa src;
    flash::Ppa dst;  // copyback destination
    flash::PageData data;
    SimTime start = 0;
    std::uint64_t epoch = 0;
    sim::Resource* lun = nullptr;
    Channel* chan = nullptr;
    /// The simulator the op's timed phases run on: sim_ in single-sim
    /// mode, the owning channel's shard sim in sharded mode.
    sim::Simulator* sim = nullptr;
    ReadCallback read_cb;
    OpCallback op_cb;
    trace::Ctx ctx;
    SimTime wait_start = 0;      // when the op began waiting on its unit
    std::uint64_t gc_mark = 0;   // unit GC-busy integral at wait start
    /// Scripted stuck-busy penalty, pre-drawn on the controller shard
    /// at dispatch (the injector's script is consume-once state, so the
    /// channel shards may never touch it). Single-sim mode keeps the
    /// in-phase draw and leaves this 0.
    SimTime stuck = 0;
    std::uint32_t unit = 0;
    std::uint32_t retry = 0;     // read-retry ladder rung (0 = first try)
  };

  Op* AcquireOp();
  void ReleaseOp(Op* op);

  /// Common entry for an op: stamps identity/wait state and requests
  /// the serial unit; `phase` runs on grant, after wait attribution.
  /// Sharded mode routes the unit request through the dispatch edge.
  void StartOp(Op* op, trace::Ctx ctx, void (Controller::*phase)(Op*));
  /// Stamps wait state and requests the serial unit. Single-sim mode
  /// calls it inline from StartOp; sharded mode runs it as the
  /// dispatch-edge event on the op's channel shard.
  void BeginUnitWait(Op* op, void (Controller::*phase)(Op*));
  /// Splits the just-ended unit wait into queue vs GC-stall, updates
  /// the stall counters, and marks the unit GC-busy for GC-origin ops.
  void OnUnitGrant(Op* op);
  void ExitUnit(Op* op);
  /// Releases the unit and hands the op to its Finish* method: inline
  /// in single-sim mode, across the completion edge in sharded mode
  /// (the Finish methods mutate controller-shard state).
  void EndPipeline(Op* op, void (Controller::*finish)(Op*));
  /// The tracer that owns this op's unit timeline: the shared tracer in
  /// single-sim mode, the op's channel-shard ring in sharded mode.
  trace::Tracer* TracerFor(const Op* op) const {
    return sharded_ ? chan_tracers_[op->src.channel] : tracer_;
  }
  bool Traced(const Op* op) const {
    trace::Tracer* t = TracerFor(op);
    return t != nullptr && t->enabled() && op->ctx.span != 0;
  }
  /// Health-track events record on the shared tracer from the
  /// controller shard (Finish* context), in both modes.
  bool TracedHealth(const Op* op) const {
    return tracer_ != nullptr && tracer_->enabled() && op->ctx.span != 0;
  }
  void RecordCellOp(Op* op, SimTime busy_ns);
  /// The op's stuck-busy penalty: pre-drawn in sharded mode, drawn
  /// in-phase otherwise (identical values — the injector script is
  /// keyed by LUN and consumed in the same per-LUN order either way).
  SimTime PenaltyOf(Op* op) {
    return sharded_ ? op->stuck : StuckPenalty(op);
  }
  /// Registers the flash-backend metric streams (cold path, ctor).
  void RegisterMetrics();

  void ReadArrayPhase(Op* op);
  void ReadTransferPhase(Op* op);
  void FinishRead(Op* op);
  /// Re-queues a failed read on the next retry-ladder rung (re-senses
  /// the array with decayed error rates and escalated latency).
  void RetryRead(Op* op);
  /// Correctable-threshold bookkeeping; may fire the refresh listener.
  void NoteCorrectable(const flash::Ppa& ppa);
  /// Scripted stuck-busy penalty for this op's LUN (0 when no injector).
  SimTime StuckPenalty(const Op* op);
  void ProgramTransferPhase(Op* op);
  void ProgramArrayPhase(Op* op);
  void FinishProgram(Op* op);
  void CopybackCommandPhase(Op* op);
  void CopybackBusyPhase(Op* op);
  void FinishCopyback(Op* op);
  void EraseCommandPhase(Op* op);
  void EraseBusyPhase(Op* op);
  void FinishErase(Op* op);

  std::uint32_t UnitIndex(std::uint32_t global_lun,
                          std::uint32_t plane) const {
    return global_lun * units_per_lun_ + plane % units_per_lun_;
  }

  /// Shared ctor body; `router` is null in single-sim mode.
  void Init(ShardRouter* router,
            const std::vector<trace::Tracer*>& channel_tracers);

  sim::Simulator* sim_;  // the controller/firmware event loop
  Config config_;
  flash::FlashArray flash_;
  ShardRouter* router_ = nullptr;  // non-null iff sharded mode
  bool sharded_ = false;
  std::vector<trace::Tracer*> chan_tracers_;  // sharded: ring per channel
  std::vector<std::unique_ptr<Channel>> channels_;
  std::uint32_t units_per_lun_ = 1;
  std::vector<std::unique_ptr<sim::Resource>> units_;
  std::uint64_t epoch_ = 0;

  trace::Tracer* tracer_ = nullptr;
  // Pushed-counter Ids mirror the flash Counters' ok-path semantics so
  // the sampler's final row cross-checks against flash_.counters().
  metrics::MetricRegistry* metrics_ = nullptr;
  metrics::Id m_pages_read_ = metrics::kInvalidId;
  metrics::Id m_pages_programmed_ = metrics::kInvalidId;
  metrics::Id m_blocks_erased_ = metrics::kInvalidId;
  metrics::Id m_copybacks_ = metrics::kInvalidId;
  metrics::Id m_read_lat_ = metrics::kInvalidId;
  metrics::Id m_program_lat_ = metrics::kInvalidId;
  metrics::Id m_erase_lat_ = metrics::kInvalidId;
  metrics::Id m_read_retries_ = metrics::kInvalidId;
  metrics::Id m_blocks_retired_ = metrics::kInvalidId;
  metrics::Id m_retry_lat_ = metrics::kInvalidId;
  std::vector<std::uint32_t> unit_tracks_;   // trace track per unit
  std::uint32_t health_track_ = 0;           // retry/retirement events
  std::vector<trace::BusyClock> unit_gc_;    // GC occupancy per unit
  // Unit-level GC stall, split per channel so each accumulator is only
  // ever written by the shard that owns the unit's channel (the
  // accessors sum them and add the channel/bus level; in sharded mode
  // read them only between engine runs).
  std::vector<std::uint64_t> gc_stall_read_by_chan_;
  std::vector<std::uint64_t> gc_stall_write_by_chan_;

  // Reliability state. All of it is only touched on error paths (plus
  // one pointer test per op), so clean runs stay schedule-identical.
  flash::FaultInjector* injector_ = nullptr;  // == config_.fault_injector
  RefreshListener refresh_;
  std::vector<std::uint32_t> spares_;  // bad-block credits per global LUN
  bool read_only_ = false;
  std::uint64_t blocks_retired_ = 0;
  std::uint64_t read_retries_ = 0;
  // Correctable reads per physical block since its last erase; entries
  // are dropped when the refresh fires (at most one per block).
  std::unordered_map<std::uint64_t, std::uint32_t> correctable_counts_;

  std::vector<std::unique_ptr<Op>> ops_;  // owns every Op ever created
  std::vector<Op*> op_free_;              // recycled records

  Histogram read_latency_;
  Histogram program_latency_;
  Histogram erase_latency_;
};

}  // namespace postblock::ssd

#endif  // POSTBLOCK_SSD_CONTROLLER_H_
