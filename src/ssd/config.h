#ifndef POSTBLOCK_SSD_CONFIG_H_
#define POSTBLOCK_SSD_CONFIG_H_

#include <cstdint>
#include <string>

#include "common/types.h"
#include "flash/error_model.h"
#include "flash/geometry.h"
#include "flash/timing.h"

namespace postblock::flash {
class FaultInjector;
}  // namespace postblock::flash

namespace postblock::trace {
class Tracer;
}  // namespace postblock::trace

namespace postblock::metrics {
class MetricRegistry;
}  // namespace postblock::metrics

namespace postblock::ssd {

/// Which Flash Translation Layer the controller runs (Figure 2's
/// "Scheduling & Mapping" box). The choice is the difference between the
/// pre-2009 SSDs (block/hybrid mapping, costly random writes) and the
/// modern ones (page mapping / DFTL) the paper contrasts in Myth 2.
enum class FtlKind {
  kPageMap = 0,  // full page-level mapping in controller RAM
  kBlockMap,     // block-level mapping (early SSDs)
  kHybrid,       // block-mapped data + page-mapped log blocks (BAST-like)
  kDftl,         // page mapping with demand-cached map (Gupta et al. [10])
  /// Host-managed physical append (the paper's Section 3 post-block
  /// device): no L2P, per-region append points, device-issued names,
  /// migration callbacks instead of hidden GC. Only the nameless
  /// command vocabulary works; LBA read/write/trim are Unimplemented.
  kVisionAppend,
};

const char* FtlKindName(FtlKind kind);

/// How the FTL scheduler places incoming host writes across LUNs.
enum class PlacementKind {
  /// Round-robin channel-first striping: consecutive writes land on
  /// different channels — maximizes parallelism for later reads.
  kChannelStripe = 0,
  /// LBA-static: a block-range of LBAs sticks to one LUN — models FTLs
  /// without placement freedom; later reads of a range serialize.
  kLbaStatic,
};

const char* PlacementKindName(PlacementKind kind);

/// Garbage-collection victim selection (Figure 2's GC box).
enum class GcPolicyKind {
  kGreedy = 0,   // fewest valid pages
  kCostBenefit,  // (1-u)/(1+u) * age (Rosenblum-style)
};

const char* GcPolicyKindName(GcPolicyKind kind);

struct GcConfig {
  GcPolicyKind policy = GcPolicyKind::kGreedy;
  /// Start GC on a LUN when its free-block count drops to this level.
  std::uint32_t low_watermark_blocks = 3;
  /// Free blocks reserved for GC relocation writes (host writes stall
  /// rather than take the last `reserve_blocks` free blocks).
  std::uint32_t reserve_blocks = 1;
};

struct WearLevelConfig {
  /// Dynamic WL: allocate the least-worn free block.
  bool dynamic = true;
  /// Static WL: migrate cold data into worn blocks when the erase-count
  /// spread across *data* blocks exceeds the threshold.
  bool static_enabled = false;
  std::uint32_t spread_threshold = 64;
  /// Rate limit: at most one migration per this many GC erases on the
  /// LUN (prevents migration storms; classic FTL pacing).
  std::uint32_t migrate_interval_erases = 8;
};

/// Battery-backed controller RAM write cache ("safe cache"): a write IO
/// completes as soon as it hits the buffer (the paper's Myth 2, reason
/// one).
struct WriteBufferConfig {
  std::uint32_t pages = 0;  // 0 disables the buffer
  /// Controller latency to accept a buffered write.
  SimTime insert_ns = 5 * kMicrosecond;
  /// Buffer survives power loss (battery/supercap). If false, a power
  /// cut drops un-drained writes.
  bool battery_backed = true;
  /// Max concurrent drain programs issued per LUN.
  std::uint32_t drain_depth_per_lun = 1;
};

/// Controller-level error recovery (the reliability layer over the
/// chip's stochastic ErrorModel — Myth 1's "error management must
/// happen at the SSD level"). Defaults are always-on but cost nothing
/// on clean runs: every knob only acts when ECC actually reports an
/// error.
struct ReliabilityConfig {
  /// Read-retry ladder depth: after an uncorrectable first read the
  /// controller re-senses up to this many more times, each rung adding
  /// an escalating multiple of the array read time. 0 disables.
  std::uint32_t read_retry_steps = 4;
  /// Extra array time per rung = rung_index * this fraction of tR.
  double retry_latency_factor = 1.0;
  /// After this many *correctable* reads from one physical block the
  /// FTL refreshes it (relocates live data before errors become
  /// uncorrectable). 0 disables refresh.
  std::uint32_t refresh_correctable_threshold = 8;
  /// Bad-block spare budget per LUN. Erase-retirement consumes a spare
  /// credit instead of silently shrinking over-provisioning; when a
  /// LUN exhausts its credits the device goes read-only (writes fail
  /// with ResourceExhausted; reads still serve).
  std::uint32_t spare_blocks_per_lun = 4;
};

/// Everything needed to build a simulated SSD.
struct Config {
  flash::Geometry geometry;
  flash::Timing timing;
  flash::ErrorModelConfig errors = flash::ErrorModelConfig::None();
  ReliabilityConfig reliability;

  /// Scripted fault injector layered over `errors` (not owned; may be
  /// null). Deterministic: consumes no Rng draws, so attaching an
  /// empty one changes nothing.
  flash::FaultInjector* fault_injector = nullptr;

  FtlKind ftl = FtlKind::kPageMap;
  PlacementKind placement = PlacementKind::kChannelStripe;
  GcConfig gc;
  WearLevelConfig wear;
  WriteBufferConfig write_buffer;

  /// Fraction of raw capacity hidden from the host (over-provisioning).
  double over_provisioning = 0.125;

  /// Fixed controller firmware overhead added to every host-visible op.
  SimTime controller_overhead_ns = 2 * kMicrosecond;

  /// Per-command admission cost on the batched doorbell path
  /// (BlockDevice::SubmitBatch): the i-th command of one doorbell ring
  /// is admitted at controller_overhead_ns + i * doorbell_cmd_ns. The
  /// firmware fetches SQ entries sequentially, but the fixed
  /// per-doorbell overhead is paid once for the whole batch — that
  /// amortization is what makes batching pay.
  SimTime doorbell_cmd_ns = 200;

  /// Cross-layer tracer shared by every layer of this device (not
  /// owned; may be null). Attaching a tracer wires span propagation and
  /// the GC-stall attribution counters through the whole stack; stage
  /// events are only recorded while tracer->enabled() — the single
  /// flag that turns full attribution on (ISSUE 2).
  trace::Tracer* tracer = nullptr;

  /// Time-series metric registry shared by every layer of this device
  /// (not owned; may be null). Attaching one makes controller, FTL and
  /// device register their counters/gauges/windowed histograms at
  /// construction so a `metrics::Sampler` can snapshot them on a sim
  /// clock (ISSUE 3). Like the tracer, attachment never perturbs the
  /// simulated schedule — the registry only observes.
  metrics::MetricRegistry* metrics = nullptr;

  /// Multi-plane operation: array operations on *different planes* of
  /// one LUN execute concurrently (the paper's §2.2: planes exist
  /// "typically to allow parallelism across planes"). Off = the whole
  /// LUN is one serial unit. Note: an FTL that wants plane-striped
  /// *placement* can equivalently be configured with
  /// luns_per_channel *= planes_per_lun.
  bool plane_parallelism = false;

  /// Vision-append FTL: independent append points (regions). A host
  /// stream maps to region (stream % append_regions); each region fills
  /// its own active block, taking free blocks round-robin across LUNs.
  std::uint32_t append_regions = 4;
  /// Vision-append FTL: when free blocks drop to this fraction of the
  /// array, the device starts *cooperative migration* — it relocates
  /// the live pages of the deadest block (firing the migration handler
  /// for each) and erases it. Not GC: liveness is entirely
  /// host-declared via nameless-free; the device only compacts
  /// fragmentation the host's frees created, and tells the host about
  /// every move.
  double append_migrate_watermark = 0.06;

  /// Hybrid FTL: log blocks per LUN.
  std::uint32_t hybrid_log_blocks_per_lun = 4;
  /// DFTL: cached mapping table capacity, in translation pages.
  std::uint32_t dftl_cmt_pages = 64;
  /// DFTL: LBAs covered by one translation page.
  std::uint32_t dftl_entries_per_tp = 512;

  std::uint64_t seed = 42;

  /// Host-visible logical blocks (pages) after over-provisioning.
  std::uint64_t UserPages() const {
    return static_cast<std::uint64_t>(
        static_cast<double>(geometry.total_pages()) *
        (1.0 - over_provisioning));
  }

  /// A small default device suitable for tests (a few thousand pages).
  static Config Small();
  /// A 2012-era consumer SSD shape (default for benches).
  static Config Consumer2012();
  /// A single-channel single-LUN device (for raw-chip comparisons).
  static Config SingleChip();
};

}  // namespace postblock::ssd

#endif  // POSTBLOCK_SSD_CONFIG_H_
