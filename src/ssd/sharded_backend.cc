#include "ssd/sharded_backend.h"

#include <cassert>
#include <string>

namespace postblock::ssd {

namespace {

/// Order-sensitive 64-bit fold (same mix family as the engine's).
std::uint64_t Fold(std::uint64_t h, std::uint64_t v) {
  std::uint64_t x = v ^ (h + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

ShardedFlashSim::ShardedFlashSim(const Config& device_config,
                                 const ShardedRunConfig& run_config)
    : config_(device_config),
      run_(run_config),
      plan_(ShardPlan::FromConfig(device_config, run_.seam_coalesce_ns)),
      ctrl_rng_(flash::RngDomain(device_config.seed)
                    .ForDomain(flash::RngDomain::kControllerDomain)) {
  sim::ShardedConfig engine_config;
  engine_config.shards = plan_.num_shards;
  engine_config.workers = run_.workers;
  engine_config.lookahead = plan_.Lookahead();
  engine_config.fingerprint = run_.fingerprint;
  engine_config.observer = run_.observer;
  engine_ = std::make_unique<sim::ShardedEngine>(engine_config);

  const flash::Geometry& geo = config_.geometry;
  const flash::RngDomain domain(config_.seed);
  const std::int64_t channel_pages =
      static_cast<std::int64_t>(geo.luns_per_channel) *
      geo.blocks_per_lun() * geo.pages_per_block;
  channels_.reserve(geo.channels);
  for (std::uint32_t c = 0; c < geo.channels; ++c) {
    auto ch = std::make_unique<ChannelState>();
    ch->channel = c;
    sim::Simulator* shard_sim = engine_->shard(plan_.channel_shard[c]);
    ch->bus = std::make_unique<sim::Resource>(
        shard_sim, "shard.ch" + std::to_string(c) + ".bus");
    ch->units.reserve(geo.luns_per_channel);
    for (std::uint32_t l = 0; l < geo.luns_per_channel; ++l) {
      ch->units.push_back(std::make_unique<sim::Resource>(
          shard_sim, "shard.ch" + std::to_string(c) + ".lun" +
                         std::to_string(l)));
    }
    ch->rng = domain.ForDomain(c);
    ch->free_pages = static_cast<std::int64_t>(
        static_cast<double>(channel_pages) * run_.initial_free_fraction);
    channels_.push_back(std::move(ch));
  }
  queues_.resize(geo.channels);
  if (!run_.tenant_weights.empty()) {
    const std::size_t n = run_.tenant_weights.size();
    tenant_credits_.resize(n);
    for (std::size_t t = 0; t < n; ++t) {
      const std::uint32_t w = run_.tenant_weights[t];
      tenant_credits_[t] = w == 0 ? 1 : w;
    }
    tenant_completed_.assign(n, 0);
    tenant_latency_.resize(n);
  }
}

ShardedFlashSim::~ShardedFlashSim() = default;

SimTime ShardedFlashSim::Run() {
  // One setup event on the controller shard primes every channel's
  // closed loop in channel order — all initial Rng draws happen in one
  // deterministic sequence.
  engine_->shard(plan_.controller_shard)->Schedule(0, [this] {
    for (std::uint32_t c = 0; c < config_.geometry.channels; ++c) {
      for (std::uint32_t q = 0; q < run_.queue_depth_per_channel; ++q) {
        IssueIo(c);
      }
    }
  });
  return engine_->Run();
}

// --- Controller shard --------------------------------------------------

void ShardedFlashSim::IssueIo(std::uint32_t channel) {
  HostQueue& q = queues_[channel];
  if (q.issued >= run_.ios_per_channel) return;
  ++q.issued;
  ++q.inflight;
  // Host-side placement draws (op type, target LUN) come from the
  // controller's own Rng domain; channel shards never see them. The
  // tenant label is a pure DRR cursor — no draw, so an empty weight
  // list leaves the sequence byte-identical.
  const bool is_write = ctrl_rng_.Uniform(100) < run_.write_percent;
  const auto lun = static_cast<std::uint32_t>(
      ctrl_rng_.Uniform(config_.geometry.luns_per_channel));
  const std::uint32_t tenant =
      run_.tenant_weights.empty() ? 0 : NextTenant();
  sim::Simulator* ctrl = engine_->shard(plan_.controller_shard);
  const SimTime now = ctrl->Now();
  const SimTime arrive = now + plan_.dispatch_ns;
  if (is_write) {
    engine_->Post(plan_.controller_shard, plan_.channel_shard[channel],
                  arrive, [this, channel, lun, now, tenant] {
                    StartWrite(channel, lun, now, tenant);
                  });
  } else {
    engine_->Post(plan_.controller_shard, plan_.channel_shard[channel],
                  arrive, [this, channel, lun, now, tenant] {
                    StartRead(channel, lun, now, tenant);
                  });
  }
}

std::uint32_t ShardedFlashSim::NextTenant() {
  const std::size_t n = tenant_credits_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t t = (tenant_pos_ + i) % n;
    if (tenant_credits_[t] == 0) continue;
    --tenant_credits_[t];
    tenant_pos_ = static_cast<std::uint32_t>(t);
    return static_cast<std::uint32_t>(t);
  }
  for (std::size_t t = 0; t < n; ++t) {
    const std::uint32_t w = run_.tenant_weights[t];
    tenant_credits_[t] = w == 0 ? 1 : w;
  }
  tenant_pos_ = (tenant_pos_ + 1) % static_cast<std::uint32_t>(n);
  return NextTenant();
}

void ShardedFlashSim::OnCompletion(std::uint32_t channel,
                                   SimTime issued_at, bool is_write,
                                   std::uint32_t tenant) {
  (void)is_write;
  HostQueue& q = queues_[channel];
  --q.inflight;
  ++q.completed;
  ++total_completed_;
  const SimTime now = engine_->shard(plan_.controller_shard)->Now();
  latency_.Record(now - issued_at);
  if (!tenant_completed_.empty()) {
    ++tenant_completed_[tenant];
    tenant_latency_[tenant].Record(now - issued_at);
  }
  IssueIo(channel);
}

// --- Channel shards ----------------------------------------------------

void ShardedFlashSim::StartRead(std::uint32_t channel, std::uint32_t lun,
                                SimTime issued_at, std::uint32_t tenant) {
  ChannelState& ch = *channels_[channel];
  // LUN: command + array read to the page register, then the shared
  // bus: data transfer out — the order that makes reads channel-bound.
  ch.units[lun]->UseFor(
      config_.timing.cmd_ns + config_.timing.read_ns,
      [this, channel, issued_at, tenant] {
        ChannelState& c = *channels_[channel];
        ++c.reads;
        c.bus->UseFor(TransferNs(), [this, channel, issued_at, tenant] {
          PostCompletion(channel, issued_at, /*is_write=*/false, tenant);
        });
      });
}

void ShardedFlashSim::StartWrite(std::uint32_t channel, std::uint32_t lun,
                                 SimTime issued_at, std::uint32_t tenant) {
  ChannelState& ch = *channels_[channel];
  // Bus: data transfer in, then LUN: array program — writes overlap
  // their long program phases across LUNs (chip-bound).
  ch.bus->UseFor(TransferNs(), [this, channel, lun, issued_at, tenant] {
    ChannelState& c = *channels_[channel];
    c.units[lun]->UseFor(
        config_.timing.program_ns, [this, channel, issued_at, tenant] {
          ChannelState& cc = *channels_[channel];
          ++cc.programs;
          --cc.free_pages;
          PostCompletion(channel, issued_at, /*is_write=*/true, tenant);
          MaybeStartGc(channel);
        });
  });
}

void ShardedFlashSim::PostCompletion(std::uint32_t channel,
                                     SimTime issued_at, bool is_write,
                                     std::uint32_t tenant) {
  sim::Simulator* shard_sim = engine_->shard(plan_.channel_shard[channel]);
  const SimTime deliver = shard_sim->Now() + plan_.complete_ns;
  engine_->Post(plan_.channel_shard[channel], plan_.controller_shard,
                deliver, [this, channel, issued_at, is_write, tenant] {
                  OnCompletion(channel, issued_at, is_write, tenant);
                });
}

void ShardedFlashSim::MaybeStartGc(std::uint32_t channel) {
  ChannelState& ch = *channels_[channel];
  if (ch.gc_active || ch.free_pages >= GcWatermarkPages()) return;
  ch.gc_active = true;
  ++ch.gc_cycles;
  // Victim liveness and relocation LUN come from this shard's own Rng
  // domain — the draw sequence depends only on this channel's event
  // order, never on other shards or worker interleaving.
  const std::uint64_t cap =
      static_cast<std::uint64_t>(config_.geometry.pages_per_block) *
      run_.gc_max_live_x128 / 128;
  ch.gc_moves_left =
      cap == 0 ? 0 : static_cast<std::uint32_t>(ch.rng.Uniform(cap + 1));
  ch.gc_lun = static_cast<std::uint32_t>(
      ch.rng.Uniform(config_.geometry.luns_per_channel));
  GcStep(channel);
}

void ShardedFlashSim::GcStep(std::uint32_t channel) {
  ChannelState& ch = *channels_[channel];
  if (ch.gc_moves_left == 0) {
    GcErase(channel);
    return;
  }
  --ch.gc_moves_left;
  // One relocation: read the live page off the victim LUN, haul it
  // across the channel bus, program it back — external copy, so GC
  // fights host IO for both the LUN and the bus (Figure 2's
  // interference, confined to this shard).
  ch.units[ch.gc_lun]->UseFor(
      config_.timing.cmd_ns + config_.timing.read_ns, [this, channel] {
        ChannelState& c = *channels_[channel];
        ++c.reads;
        c.bus->UseFor(TransferNs(), [this, channel] {
          ChannelState& cc = *channels_[channel];
          cc.units[cc.gc_lun]->UseFor(
              config_.timing.program_ns, [this, channel] {
                ChannelState& c3 = *channels_[channel];
                ++c3.programs;
                ++c3.gc_moves;
                GcStep(channel);
              });
        });
      });
}

void ShardedFlashSim::GcErase(std::uint32_t channel) {
  ChannelState& ch = *channels_[channel];
  // Erase dispatch holds the bus for command cycles only, then the LUN
  // is busy for the full 2 ms-class erase.
  ch.bus->UseFor(config_.timing.cmd_ns, [this, channel] {
    ChannelState& c = *channels_[channel];
    c.units[c.gc_lun]->UseFor(config_.timing.erase_ns, [this, channel] {
      ChannelState& cc = *channels_[channel];
      ++cc.erases;
      // The erased block's pages return minus the ones GC re-programmed.
      cc.free_pages += static_cast<std::int64_t>(
          config_.geometry.pages_per_block);
      cc.gc_active = false;
      MaybeStartGc(channel);
    });
  });
}

// --- Observables -------------------------------------------------------

std::uint64_t ShardedFlashSim::pages_read() const {
  std::uint64_t n = 0;
  for (const auto& ch : channels_) n += ch->reads;
  return n;
}

std::uint64_t ShardedFlashSim::pages_programmed() const {
  std::uint64_t n = 0;
  for (const auto& ch : channels_) n += ch->programs;
  return n;
}

std::uint64_t ShardedFlashSim::blocks_erased() const {
  std::uint64_t n = 0;
  for (const auto& ch : channels_) n += ch->erases;
  return n;
}

std::uint64_t ShardedFlashSim::gc_page_moves() const {
  std::uint64_t n = 0;
  for (const auto& ch : channels_) n += ch->gc_moves;
  return n;
}

std::uint64_t ShardedFlashSim::ModelFingerprint() const {
  std::uint64_t h = 0x452821e638d01377ull;
  h = Fold(h, latency_.count());
  h = Fold(h, latency_.min());
  h = Fold(h, latency_.max());
  h = Fold(h, static_cast<std::uint64_t>(latency_.Sum()));
  h = Fold(h, latency_.P50());
  h = Fold(h, latency_.P999());
  for (const auto& ch : channels_) {
    h = Fold(h, ch->reads);
    h = Fold(h, ch->programs);
    h = Fold(h, ch->erases);
    h = Fold(h, ch->gc_moves);
    h = Fold(h, ch->gc_cycles);
    h = Fold(h, static_cast<std::uint64_t>(ch->free_pages));
    h = Fold(h, ch->bus->busy_ns());
  }
  for (const auto& q : queues_) {
    h = Fold(h, q.completed);
  }
  // Tenant attribution folds only when configured, so a weight-less
  // run's fingerprint is unchanged from before tenants existed.
  for (std::size_t t = 0; t < tenant_completed_.size(); ++t) {
    h = Fold(h, tenant_completed_[t]);
    h = Fold(h, tenant_latency_[t].count());
    h = Fold(h, tenant_latency_[t].max());
    h = Fold(h, tenant_latency_[t].P999());
  }
  h = Fold(h, engine_->Now());
  return h;
}

std::uint64_t ShardedFlashSim::CombinedFingerprint() const {
  return Fold(ModelFingerprint(), engine_->Fingerprint());
}

}  // namespace postblock::ssd
