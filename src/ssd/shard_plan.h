#ifndef POSTBLOCK_SSD_SHARD_PLAN_H_
#define POSTBLOCK_SSD_SHARD_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "flash/geometry.h"
#include "ssd/config.h"

namespace postblock::ssd {

/// One declared cross-shard interaction edge: events may cross from
/// shard `from` to shard `to` only with at least `min_latency_ns` of
/// simulated delay. The minimum over all edges is the engine's safe
/// conservative-lookahead bound — the contract that lets shards run
/// ahead of each other without ever back-dating an event.
struct ShardEdge {
  std::uint32_t from;
  std::uint32_t to;
  SimTime min_latency_ns;
  std::string name;
};

/// The controller/channel seam annotations for a device config: which
/// shard each channel's chips belong to, where the controller shard
/// sits, and the declared cross-shard edges with their minimum
/// latencies.
///
/// Channels are the natural shard boundary (the paper's §2.2
/// hierarchy): chips on different channels share nothing — they only
/// interact through the controller, and that interaction has real,
/// bounded-below latency. Two edge families exist per channel:
///
///   dispatch:   controller -> channel. Firmware command dispatch onto
///               the channel's queue: controller overhead plus the
///               doorbell/coalescing grid (the blk-mq seam of PR 5 —
///               commands cross in batches, not per-cycle).
///   completion: channel -> controller. Completion routing back to the
///               firmware, same batched-seam floor.
///
/// Both latencies come from the config; their minimum is Lookahead(),
/// which directly sets the sharded engine's rendezvous window width.
struct ShardPlan {
  std::uint32_t num_shards = 0;
  std::uint32_t controller_shard = 0;
  /// channel_shard[c] = shard owning channel c's bus and LUNs.
  std::vector<std::uint32_t> channel_shard;
  SimTime dispatch_ns = 0;
  SimTime complete_ns = 0;
  std::vector<ShardEdge> edges;

  /// The engine's safe lookahead: minimum declared cross-shard latency.
  SimTime Lookahead() const;

  /// Builds the per-channel plan for a device shape: one shard per
  /// channel plus a controller shard (id = channels). `seam_coalesce_ns`
  /// is the batched doorbell/completion-coalescing grid added on top of
  /// the config's controller overhead on both seam directions.
  static ShardPlan FromConfig(const Config& config,
                              SimTime seam_coalesce_ns = 62 * kMicrosecond);
};

}  // namespace postblock::ssd

#endif  // POSTBLOCK_SSD_SHARD_PLAN_H_
