#ifndef POSTBLOCK_SSD_SHARDED_DEVICE_H_
#define POSTBLOCK_SSD_SHARDED_DEVICE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "sim/sharded_engine.h"
#include "ssd/config.h"
#include "ssd/device.h"
#include "ssd/shard_plan.h"
#include "ssd/shard_router.h"
#include "trace/tracer.h"

namespace postblock::ssd {

/// Run parameters for the device-on-engine harness: a closed-loop
/// fig2-class host (sequential precondition, then a random read/write
/// mix at fixed queue depth) driving the full ssd::Device — FTL, GC,
/// write buffer, reliability ladder included — on a ShardPlan-derived
/// sharded engine. Identical parameters must commit an identical
/// schedule at every worker count; gate 10 and the sharded-device test
/// hold ModelFingerprint()/CombinedFingerprint() to that.
struct ShardedDeviceRun {
  std::uint32_t workers = 0;  // 0 = the sequential reference loop
  /// Seam price added on top of controller overhead on both edges
  /// (ShardPlan::FromConfig's batched doorbell/coalescing grid).
  SimTime seam_coalesce_ns = 62 * kMicrosecond;
  std::uint32_t queue_depth = 32;
  std::uint64_t total_ios = 20000;   // main phase, after precondition
  std::uint32_t write_percent = 30;  // rest are reads
  /// Fraction of user pages sequentially written before the main phase
  /// (an aged device, so random overwrites exercise GC relocation
  /// across the seam).
  double fill_fraction = 0.6;
  std::uint64_t seed = 0x5eed;
  /// Attach trace rings: one per channel shard plus the shared
  /// controller ring. Their contents fold into ModelFingerprint(), so
  /// the digest gates also hold tracing to worker-count invariance.
  bool tracing = false;
};

/// Owns engine + router + device + host loop for one run. Build, call
/// Run() once, then read the fingerprints/introspection accessors.
class ShardedDeviceSim {
 public:
  ShardedDeviceSim(const Config& config, const ShardedDeviceRun& run);

  ShardedDeviceSim(const ShardedDeviceSim&) = delete;
  ShardedDeviceSim& operator=(const ShardedDeviceSim&) = delete;

  /// Drives the closed loop to completion; returns final sim time.
  SimTime Run();

  Device* device() { return device_.get(); }
  sim::ShardedEngine* engine() { return engine_.get(); }
  const ShardPlan& plan() const { return router_->plan(); }

  std::uint64_t ios_completed() const { return done_; }
  std::uint64_t io_errors() const { return errors_; }

  /// Digest of model observables: device + flash counters, host and
  /// controller latency histograms, write amplification, GC-stall
  /// attribution, final sim time, and (when tracing) every retained
  /// trace event of every ring. Byte-identical schedules must produce
  /// equal digests.
  std::uint64_t ModelFingerprint() const;
  /// ModelFingerprint folded with the engine's committed-schedule
  /// fingerprint — the witness gate 10 compares across worker counts.
  std::uint64_t CombinedFingerprint() const;

 private:
  void Pump();                 // controller-shard context: keep qd full
  void Issue();                // submit the next IO of the script
  void OnDone(const Status& st);

  Config config_;
  ShardedDeviceRun run_;
  ShardPlan plan_;
  std::unique_ptr<sim::ShardedEngine> engine_;
  std::unique_ptr<ShardRouter> router_;
  std::vector<std::unique_ptr<trace::Tracer>> rings_;  // tracing only
  std::unique_ptr<Device> device_;

  std::uint64_t fill_pages_ = 0;    // precondition span (user LBAs)
  std::uint64_t fill_issued_ = 0;
  std::uint64_t main_issued_ = 0;
  std::uint32_t inflight_ = 0;
  std::uint64_t done_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t token_ = 1;         // write payload stamp
  std::uint64_t rng_ = 0;           // splitmix64 state, seeded per run
};

}  // namespace postblock::ssd

#endif  // POSTBLOCK_SSD_SHARDED_DEVICE_H_
