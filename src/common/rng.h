#ifndef POSTBLOCK_COMMON_RNG_H_
#define POSTBLOCK_COMMON_RNG_H_

#include <cstdint>

namespace postblock {

/// Deterministic, seedable pseudo-random generator (xoshiro256**).
/// Every stochastic component of the simulator takes an explicit Rng so
/// whole-system runs are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  std::uint64_t Next();

  /// Uniform in [0, bound) without modulo bias. bound must be > 0.
  std::uint64_t Uniform(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t UniformRange(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability p in [0, 1].
  bool Bernoulli(double p);

  /// Forks an independent stream (useful for giving each component its
  /// own deterministic sub-stream).
  Rng Fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace postblock

#endif  // POSTBLOCK_COMMON_RNG_H_
