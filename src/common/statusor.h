#ifndef POSTBLOCK_COMMON_STATUSOR_H_
#define POSTBLOCK_COMMON_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace postblock {

/// Either a value of type T or a non-OK Status. Accessing value() on an
/// error StatusOr is a programming error (asserted in debug builds).
template <typename T>
class StatusOr {
 public:
  /// Implicit from value and from Status, mirroring absl::StatusOr — the
  /// conversion direction is always obvious at the call site.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `expr` (a StatusOr), propagating errors; otherwise assigns
/// the contained value to `lhs`.
#define PB_ASSIGN_OR_RETURN(lhs, expr)          \
  PB_ASSIGN_OR_RETURN_IMPL(                     \
      PB_STATUS_MACRO_CONCAT(_pb_sor, __LINE__), lhs, expr)

#define PB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value()

#define PB_STATUS_MACRO_CONCAT_INNER(a, b) a##b
#define PB_STATUS_MACRO_CONCAT(a, b) PB_STATUS_MACRO_CONCAT_INNER(a, b)

}  // namespace postblock

#endif  // POSTBLOCK_COMMON_STATUSOR_H_
