#ifndef POSTBLOCK_COMMON_TYPES_H_
#define POSTBLOCK_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace postblock {

/// Simulated time in nanoseconds since simulation start.
using SimTime = std::uint64_t;

/// Logical block address as exposed by a block device (one logical block
/// == one flash page in this framework; see DESIGN.md §4).
using Lba = std::uint64_t;

/// Sentinel for "no LBA" (e.g. a flash page holding FTL metadata or GC'd
/// garbage rather than host data).
inline constexpr Lba kInvalidLba = std::numeric_limits<Lba>::max();

/// Monotonic per-write sequence number used to stamp page versions; lets
/// tests and recovery identify the newest copy of an LBA.
using SequenceNumber = std::uint64_t;

/// Host-visible identifier for an in-flight IO request.
using RequestId = std::uint64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000;
inline constexpr SimTime kMillisecond = 1000 * 1000;
inline constexpr SimTime kSecond = 1000ull * 1000 * 1000;

/// Byte-size literals.
inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

}  // namespace postblock

#endif  // POSTBLOCK_COMMON_TYPES_H_
