#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace postblock {

Histogram::Histogram() : buckets_(kBuckets, 0) {}

int Histogram::BucketFor(std::uint64_t value) {
  if (value < kSubBuckets) return static_cast<int>(value);
  // Octave = position of highest set bit above the sub-bucket range.
  const int msb = 63 - std::countl_zero(value);
  const int octave = msb - kSubBucketBits + 1;
  const int sub =
      static_cast<int>((value >> (msb - kSubBucketBits)) & (kSubBuckets - 1));
  const int idx = octave * kSubBuckets + sub;
  return std::min(idx, kBuckets - 1);
}

std::uint64_t Histogram::BucketMid(int index) {
  if (index < kSubBuckets) return static_cast<std::uint64_t>(index);
  const int octave = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  const int msb = octave + kSubBucketBits - 1;
  const std::uint64_t base =
      (1ull << msb) | (static_cast<std::uint64_t>(sub) << (msb - kSubBucketBits));
  const std::uint64_t width = 1ull << (msb - kSubBucketBits);
  return base + width / 2;
}

void Histogram::Record(std::uint64_t value) { RecordN(value, 1); }

void Histogram::RecordN(std::uint64_t value, std::uint64_t count) {
  if (count == 0) return;
  buckets_[BucketFor(value)] += count;
  count_ += count;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  sum_ += static_cast<double>(value) * static_cast<double>(count);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = ~0ull;
  max_ = 0;
  sum_ = 0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

std::uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  // The extremes are tracked exactly; answer them exactly instead of
  // with a bucket midpoint (p<=0 would otherwise overshoot min, p>=100
  // could undershoot max when max sits above its bucket's midpoint).
  if (p <= 0.0) return min();
  if (p >= 100.0) return max_;
  const double target_rank = p / 100.0 * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) >= target_rank && buckets_[i] > 0) {
      return std::min(BucketMid(i), max_);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1f p50=%llu p99=%llu max=%llu",
                static_cast<unsigned long long>(count_), Mean(),
                static_cast<unsigned long long>(P50()),
                static_cast<unsigned long long>(P99()),
                static_cast<unsigned long long>(max()));
  return buf;
}

}  // namespace postblock
