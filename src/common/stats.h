#ifndef POSTBLOCK_COMMON_STATS_H_
#define POSTBLOCK_COMMON_STATS_H_

#include <cstdint>
#include <map>
#include <string>

namespace postblock {

/// A named bag of monotonically increasing counters. Each subsystem
/// exposes one; benches and tests read them to assert behaviour (e.g.
/// write amplification = pages_programmed / host_pages_written).
class Counters {
 public:
  void Add(const std::string& name, std::uint64_t delta) {
    counters_[name] += delta;
  }
  void Increment(const std::string& name) { Add(name, 1); }

  /// Returns 0 for unknown counters — absence means "never happened".
  std::uint64_t Get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  void Reset() { counters_.clear(); }

  const std::map<std::string, std::uint64_t>& All() const {
    return counters_;
  }

  /// Multi-line "name = value" dump, sorted by name.
  std::string ToString() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace postblock

#endif  // POSTBLOCK_COMMON_STATS_H_
