#ifndef POSTBLOCK_COMMON_TABLE_H_
#define POSTBLOCK_COMMON_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace postblock {

/// Markdown-ish fixed-width table printer used by the benchmark harness
/// so every bench prints rows/series in the same shape the paper reports.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& AddRow(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string Num(double v, int precision = 2);
  static std::string Int(std::uint64_t v);
  /// Nanoseconds rendered with an adaptive unit (ns/us/ms/s).
  static std::string Time(std::uint64_t ns);
  /// Bytes/second rendered with an adaptive unit (KiB/s .. GiB/s).
  static std::string Rate(double bytes_per_sec);

  /// Renders the table with padded columns.
  std::string ToString() const;
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace postblock

#endif  // POSTBLOCK_COMMON_TABLE_H_
