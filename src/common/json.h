#ifndef POSTBLOCK_COMMON_JSON_H_
#define POSTBLOCK_COMMON_JSON_H_

#include <cstdio>
#include <string>

namespace postblock {

/// Escapes `s` for embedding inside a JSON string literal. Handles the
/// two mandatory escapes (quote, backslash) plus control characters
/// (as \n, \t, \r or \u00XX) — user-supplied names (metric names,
/// tenant names, trace track names) pass through every exporter via
/// this, so a tenant called `a"b` can never produce invalid JSON.
inline std::string JsonEscaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// Escapes `s` as an RFC-4180 CSV field: returned verbatim unless it
/// contains a comma, quote or newline, in which case it is quoted with
/// embedded quotes doubled. Used for metric-name header cells, which
/// may carry user-supplied tenant names.
inline std::string CsvEscaped(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace postblock

#endif  // POSTBLOCK_COMMON_JSON_H_
