#include "common/stats.h"

#include <sstream>

namespace postblock {

std::string Counters::ToString() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters_) {
    os << name << " = " << value << "\n";
  }
  return os.str();
}

}  // namespace postblock
