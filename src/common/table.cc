#include "common/table.h"

#include <cstdio>
#include <iostream>
#include <sstream>

namespace postblock {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Table& Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Int(std::uint64_t v) {
  return std::to_string(v);
}

std::string Table::Time(std::uint64_t ns) {
  char buf[64];
  if (ns < 10'000ull) {
    std::snprintf(buf, sizeof(buf), "%llu ns",
                  static_cast<unsigned long long>(ns));
  } else if (ns < 10'000'000ull) {
    std::snprintf(buf, sizeof(buf), "%.1f us", static_cast<double>(ns) / 1e3);
  } else if (ns < 10'000'000'000ull) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", static_cast<double>(ns) / 1e9);
  }
  return buf;
}

std::string Table::Rate(double bytes_per_sec) {
  char buf[64];
  if (bytes_per_sec < 1024.0 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB/s", bytes_per_sec / 1024);
  } else if (bytes_per_sec < 1024.0 * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB/s",
                  bytes_per_sec / (1024.0 * 1024));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f GiB/s",
                  bytes_per_sec / (1024.0 * 1024 * 1024));
  }
  return buf;
}

std::string Table::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](std::ostringstream& os,
                      const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << " " << cells[c]
         << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    os << "\n";
  };
  std::ostringstream os;
  emit_row(os, headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(os, row);
  return os.str();
}

void Table::Print() const { std::cout << ToString() << std::flush; }

}  // namespace postblock
