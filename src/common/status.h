#ifndef POSTBLOCK_COMMON_STATUS_H_
#define POSTBLOCK_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace postblock {

/// Error categories used across the library. Modeled on the RocksDB /
/// Arrow convention: the library never throws; every fallible operation
/// returns a Status (or StatusOr<T>).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,  // e.g. flash constraint C1-C4 violations
  kResourceExhausted,   // e.g. no free blocks, buffer pool full
  kDataLoss,            // e.g. uncorrectable bit errors, torn write
  kUnavailable,         // e.g. device powered off
  kInternal,
  kUnimplemented,
};

/// Returns a stable human-readable name ("OK", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A cheap value-type carrying an error code and message. Ok() is the
/// success value; all other constructors attach a message for diagnostics.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string s = StatusCodeToString(code_);
    if (!msg_.empty()) {
      s += ": ";
      s += msg_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

inline const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

/// Propagates a non-OK Status out of the enclosing function.
#define PB_RETURN_IF_ERROR(expr)                 \
  do {                                           \
    ::postblock::Status _pb_st = (expr);         \
    if (!_pb_st.ok()) return _pb_st;             \
  } while (0)

}  // namespace postblock

#endif  // POSTBLOCK_COMMON_STATUS_H_
