#ifndef POSTBLOCK_COMMON_HISTOGRAM_H_
#define POSTBLOCK_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace postblock {

/// Log-bucketed latency histogram (HdrHistogram-style, base-2 buckets
/// with linear sub-buckets). Records unsigned samples, answers count /
/// mean / min / max / arbitrary percentiles. Used by every device model
/// and the benchmark harness.
class Histogram {
 public:
  Histogram();

  void Record(std::uint64_t value);
  void RecordN(std::uint64_t value, std::uint64_t count);

  /// Merges another histogram into this one.
  void Merge(const Histogram& other);

  void Reset();

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double Mean() const;
  double Sum() const { return sum_; }

  /// Value at percentile p in [0, 100]. Approximate (bucket midpoint);
  /// exact for values < 64 which land in unit-width buckets.
  std::uint64_t Percentile(double p) const;

  std::uint64_t P50() const { return Percentile(50); }
  std::uint64_t P95() const { return Percentile(95); }
  std::uint64_t P99() const { return Percentile(99); }
  std::uint64_t P999() const { return Percentile(99.9); }

  /// One-line summary: "n=... mean=... p50=... p99=... max=...".
  std::string Summary() const;

 private:
  static constexpr int kSubBucketBits = 5;  // 32 linear sub-buckets/octave
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kBuckets = (64 - kSubBucketBits) * kSubBuckets;

  static int BucketFor(std::uint64_t value);
  static std::uint64_t BucketMid(int index);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
  double sum_ = 0;
};

}  // namespace postblock

#endif  // POSTBLOCK_COMMON_HISTOGRAM_H_
