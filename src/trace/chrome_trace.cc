#include "trace/chrome_trace.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>

#include "common/json.h"

namespace postblock::trace {

namespace {

void AppendMetaEvent(std::string* out, const char* kind, std::uint32_t pid,
                     std::uint32_t tid, const std::string& name,
                     bool thread_level) {
  // Track and process names carry user-supplied strings (tenant names
  // end up as track names), so they must be escaped — a tenant called
  // `a"b` would otherwise truncate the JSON string here.
  const std::string escaped = JsonEscaped(name);
  char buf[320];
  if (thread_level) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%u,\"tid\":%u,"
                  "\"args\":{\"name\":\"%s\"}},\n",
                  kind, pid, tid, escaped.c_str());
  } else {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%u,"
                  "\"args\":{\"name\":\"%s\"}},\n",
                  kind, pid, escaped.c_str());
  }
  *out += buf;
}

}  // namespace

std::string ToChromeJson(const Tracer& tracer) {
  std::string out;
  out.reserve(256 + tracer.size() * 160);
  out += "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";

  // Metadata: one process_name per distinct pid, one thread_name per
  // registered track.
  std::set<std::uint32_t> pids;
  for (const auto& t : tracer.tracks()) {
    if (pids.insert(t.pid).second) {
      AppendMetaEvent(&out, "process_name", t.pid, 0, PidLabel(t.pid),
                      /*thread_level=*/false);
    }
    AppendMetaEvent(&out, "thread_name", t.pid, t.tid, t.name,
                    /*thread_level=*/true);
  }

  const auto& tracks = tracer.tracks();
  char buf[320];
  tracer.ForEach([&](const TraceEvent& e) {
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    if (e.track < tracks.size()) {
      pid = tracks[e.track].pid;
      tid = tracks[e.track].tid;
    }
    // ts/dur in microseconds with ns precision kept as fractions.
    std::snprintf(
        buf, sizeof(buf),
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
        "\"dur\":%.3f,\"pid\":%u,\"tid\":%u,\"args\":{\"span\":%llu,"
        "\"parent\":%llu,\"arg\":%llu}},\n",
        StageName(e.stage), OriginName(e.origin),
        static_cast<double>(e.start) / 1e3,
        static_cast<double>(e.dur()) / 1e3, pid, tid,
        static_cast<unsigned long long>(e.span),
        static_cast<unsigned long long>(e.parent),
        static_cast<unsigned long long>(e.arg));
    out += buf;
  });

  // Trim the trailing ",\n" so the array is valid JSON.
  if (out.size() >= 2 && out[out.size() - 2] == ',') {
    out.erase(out.size() - 2, 1);
  }
  out += "]\n}\n";
  return out;
}

Status WriteChromeTrace(const Tracer& tracer, const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    return Status::Unavailable("cannot open trace output: " + path);
  }
  const std::string json = ToChromeJson(tracer);
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  f.close();
  if (!f) {
    return Status::DataLoss("short write to trace output: " + path);
  }
  return Status::Ok();
}

namespace {

// --- Minimal re-parser for the exporter's own output. ----------------

/// Extracts the string value of `"key":"..."` inside `obj`, or "".
std::string FindString(const std::string& obj, const char* key) {
  const std::string pat = std::string("\"") + key + "\":\"";
  const std::size_t at = obj.find(pat);
  if (at == std::string::npos) return "";
  const std::size_t begin = at + pat.size();
  const std::size_t end = obj.find('"', begin);
  if (end == std::string::npos) return "";
  return obj.substr(begin, end - begin);
}

/// Extracts the numeric value of `"key":123[.456]` inside `obj`.
double FindNumber(const std::string& obj, const char* key, bool* found) {
  const std::string pat = std::string("\"") + key + "\":";
  const std::size_t at = obj.find(pat);
  if (at == std::string::npos) {
    if (found != nullptr) *found = false;
    return 0;
  }
  if (found != nullptr) *found = true;
  return std::strtod(obj.c_str() + at + pat.size(), nullptr);
}

}  // namespace

bool ParseChromeTrace(const std::string& json,
                      std::vector<ParsedEvent>* events) {
  events->clear();
  const std::size_t arr = json.find("\"traceEvents\"");
  if (arr == std::string::npos) return false;
  const std::size_t open = json.find('[', arr);
  if (open == std::string::npos) return false;

  std::size_t i = open + 1;
  int array_depth = 1;
  while (i < json.size() && array_depth > 0) {
    const char c = json[i];
    if (c == ']') {
      --array_depth;
      ++i;
      continue;
    }
    if (c != '{') {
      ++i;
      continue;
    }
    // Scan one event object, tracking nested braces ("args" objects).
    const std::size_t obj_begin = i;
    int depth = 0;
    for (; i < json.size(); ++i) {
      if (json[i] == '{') ++depth;
      if (json[i] == '}') {
        --depth;
        if (depth == 0) {
          ++i;
          break;
        }
      }
    }
    if (depth != 0) return false;  // unbalanced
    std::string obj = json.substr(obj_begin, i - obj_begin);

    ParsedEvent e;
    // Split off the args object first so its "name" (in metadata
    // events) doesn't shadow the event's own name.
    const std::size_t args_at = obj.find("\"args\":");
    std::string args;
    if (args_at != std::string::npos) {
      args = obj.substr(args_at);
      obj.erase(args_at);
    }
    e.name = FindString(obj, "name");
    e.cat = FindString(obj, "cat");
    const std::string ph = FindString(obj, "ph");
    e.ph = ph.empty() ? '?' : ph[0];
    e.ts_us = FindNumber(obj, "ts", nullptr);
    e.dur_us = FindNumber(obj, "dur", nullptr);
    e.pid = static_cast<std::uint64_t>(FindNumber(obj, "pid", nullptr));
    e.tid = static_cast<std::uint64_t>(FindNumber(obj, "tid", nullptr));
    e.span = static_cast<std::uint64_t>(FindNumber(args, "span", nullptr));
    e.parent =
        static_cast<std::uint64_t>(FindNumber(args, "parent", nullptr));
    e.arg = static_cast<std::uint64_t>(FindNumber(args, "arg", nullptr));
    e.meta_name = FindString(args, "name");
    events->push_back(std::move(e));
  }
  return array_depth == 0;
}

}  // namespace postblock::trace
