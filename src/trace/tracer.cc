#include "trace/tracer.h"

namespace postblock::trace {

namespace {
std::size_t RoundUpPow2(std::size_t v) {
  std::size_t p = 16;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

Tracer::Tracer(std::size_t capacity) {
  const std::size_t cap = RoundUpPow2(capacity);
  mask_ = cap - 1;
  ring_.resize(cap);
}

std::uint32_t Tracer::RegisterTrack(std::uint32_t pid,
                                    const std::string& name) {
  std::uint32_t next_tid = 1;
  for (std::uint32_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i].pid != pid) continue;
    if (tracks_[i].name == name) return i;
    ++next_tid;
  }
  TrackInfo info;
  info.pid = pid;
  info.tid = next_tid;
  info.name = name;
  tracks_.push_back(std::move(info));
  return static_cast<std::uint32_t>(tracks_.size() - 1);
}

void Tracer::ResetEvents() {
  next_ = 0;
  breakdown_.Reset();
}

}  // namespace postblock::trace
