#ifndef POSTBLOCK_TRACE_TRACE_H_
#define POSTBLOCK_TRACE_TRACE_H_

#include <cstdint>
#include <string>

#include "common/types.h"

namespace postblock::trace {

class Tracer;

/// Identity of one logical IO as it crosses layers: a span groups every
/// stage event recorded for that IO, from the WAL/block-layer submit
/// down to the flash cell op. 0 = "no span" (tracing off, or work not
/// tied to a host IO).
using SpanId = std::uint64_t;

/// Where an IO's nanoseconds went. These are the per-stage buckets of
/// the latency breakdown; for a single-page host IO the stage spans
/// tile the IO's lifetime exactly, so their durations sum to the
/// end-to-end latency (the kIo root span).
enum class Stage : std::uint8_t {
  kIo = 0,     // root span: one per host IO, submit -> completion
  kQueueWait,  // waiting in a software queue / for a busy resource
  kSchedule,   // host CPU + firmware admission/completion costs
  kMap,        // FTL mapping, placement and allocation (incl. stalls)
  kGcStall,    // resource wait attributable to GC/WL occupancy
  kTransfer,   // channel bus busy (data transfer or command cycles)
  kCellOp,     // array busy: page read/program, block erase, copyback
  kGc,         // a background collection (GC or WL) as its own span
  kApp,        // application-level op (WAL commit / sync persist)
  kSlo,        // service-objective breach marker (obs::SloWatchdog)
  kCount
};

inline const char* StageName(Stage s) {
  switch (s) {
    case Stage::kIo:
      return "io";
    case Stage::kQueueWait:
      return "queue_wait";
    case Stage::kSchedule:
      return "schedule";
    case Stage::kMap:
      return "map";
    case Stage::kGcStall:
      return "gc_stall";
    case Stage::kTransfer:
      return "transfer";
    case Stage::kCellOp:
      return "cell_op";
    case Stage::kGc:
      return "gc";
    case Stage::kApp:
      return "app";
    case Stage::kSlo:
      return "slo_breach";
    case Stage::kCount:
      break;
  }
  return "?";
}

/// Who caused the work. Carried alongside the span so host traffic and
/// the background traffic it competes with stay distinguishable on the
/// same flash tracks — the distinction the block interface hides.
enum class Origin : std::uint8_t {
  kHostRead = 0,
  kHostWrite,
  kHostTrim,
  kHostFlush,
  kGc,
  kWearLevel,
  kMeta,  // internal traffic (DFTL map IO, markers, unattributed)
  kCount
};

inline const char* OriginName(Origin o) {
  switch (o) {
    case Origin::kHostRead:
      return "host_read";
    case Origin::kHostWrite:
      return "host_write";
    case Origin::kHostTrim:
      return "host_trim";
    case Origin::kHostFlush:
      return "host_flush";
    case Origin::kGc:
      return "gc";
    case Origin::kWearLevel:
      return "wear_level";
    case Origin::kMeta:
      return "meta";
    case Origin::kCount:
      break;
  }
  return "?";
}

inline bool IsGcOrigin(Origin o) {
  return o == Origin::kGc || o == Origin::kWearLevel;
}

/// Trace context threaded through the stack alongside each operation
/// (an op's "who am I": span + cause). Plain value, 24 bytes; default
/// constructed = untraced. Passing it costs nothing measurable, so the
/// plumbing stays in place even when tracing is off.
struct Ctx {
  SpanId span = 0;
  SpanId parent = 0;
  Origin origin = Origin::kMeta;
};

/// Chrome-trace "process" ids used to group tracks by layer.
inline constexpr std::uint32_t kPidHost = 1;         // block layer, app
inline constexpr std::uint32_t kPidTranslation = 2;  // device/FTL
inline constexpr std::uint32_t kPidFlash = 3;        // channels + LUNs
/// Tenant trace tracks: tenant slot N registers under pid
/// kPidTenantBase + N, so Perfetto groups each tenant's spans as its
/// own process ("tenant-N") — the multi-tenant view the vbd backend
/// exports.
inline constexpr std::uint32_t kPidTenantBase = 16;
/// Wall-clock engine-execution tracks (obs::EngineProfiler) get their
/// own pid space far above the tenant range, so dual-clock traces can
/// merge sim-time and wall-time timelines into one Perfetto view
/// without track collisions.
inline constexpr std::uint32_t kPidEngineWall = 4096;

inline const char* PidName(std::uint32_t pid) {
  switch (pid) {
    case kPidHost:
      return "host";
    case kPidTranslation:
      return "controller";
    case kPidFlash:
      return "flash";
    case kPidEngineWall:
      return "engine-wall";
  }
  return pid >= kPidTenantBase ? "tenant" : "?";
}

/// Exporter-facing pid label: layer name for the fixed pids,
/// "tenant-<slot>" for tenant pids.
inline std::string PidLabel(std::uint32_t pid) {
  if (pid >= kPidTenantBase && pid < kPidEngineWall) {
    return "tenant-" + std::to_string(pid - kPidTenantBase);
  }
  return PidName(pid);
}

/// Integrates how long a resource has been held by GC/WL work — the
/// mechanism behind GC-stall attribution. A host op snapshots
/// `Total(now)` when it starts waiting; the delta at grant time is
/// exactly how long GC occupied the (capacity-1) resource while the op
/// waited, i.e. the GC-induced share of its queueing delay. O(1) per
/// op, always on (it also feeds the controller's gc-stall counters).
struct BusyClock {
  std::uint64_t total = 0;
  SimTime since = 0;
  std::int32_t depth = 0;

  void Enter(SimTime now) {
    if (depth++ == 0) since = now;
  }
  void Exit(SimTime now) {
    if (--depth == 0) total += now - since;
  }
  std::uint64_t Total(SimTime now) const {
    return depth > 0 ? total + (now - since) : total;
  }
};

}  // namespace postblock::trace

#endif  // POSTBLOCK_TRACE_TRACE_H_
