#ifndef POSTBLOCK_TRACE_CHROME_TRACE_H_
#define POSTBLOCK_TRACE_CHROME_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "trace/tracer.h"

namespace postblock::trace {

/// Serializes the tracer's retained events as Chrome trace-event JSON
/// (the JSON Object Format: {"traceEvents": [...]}), loadable in
/// Perfetto (ui.perfetto.dev) or chrome://tracing. Stage intervals
/// become "X" (complete) events with ts/dur in microseconds; track
/// names become "M" process_name/thread_name metadata. Span/parent/arg
/// ride in "args" so a span can be followed across layers by searching
/// its id.
std::string ToChromeJson(const Tracer& tracer);

/// ToChromeJson + write to `path`.
Status WriteChromeTrace(const Tracer& tracer, const std::string& path);

/// One event as re-read by ParseChromeTrace (tests and tools only).
struct ParsedEvent {
  std::string name;
  std::string cat;
  char ph = '?';
  double ts_us = 0;
  double dur_us = 0;
  std::uint64_t pid = 0;
  std::uint64_t tid = 0;
  std::uint64_t span = 0;
  std::uint64_t parent = 0;
  std::uint64_t arg = 0;
  /// For "M" metadata events: args.name (the process/thread name).
  std::string meta_name;
};

/// Minimal re-parser for the exporter's own output — just enough JSON
/// to round-trip what ToChromeJson emits, used by tests to validate the
/// export without an external JSON dependency. Returns false on
/// structural errors (missing traceEvents array, unbalanced braces).
bool ParseChromeTrace(const std::string& json,
                      std::vector<ParsedEvent>* events);

}  // namespace postblock::trace

#endif  // POSTBLOCK_TRACE_CHROME_TRACE_H_
