#include "trace/latency_breakdown.h"

#include <cstdio>

namespace postblock::trace {

std::uint64_t LatencyBreakdown::TotalNs(Stage stage) const {
  std::uint64_t sum = 0;
  for (std::size_t o = 0; o < kOrigins; ++o) {
    sum += totals_[Index(stage, static_cast<Origin>(o))];
  }
  return sum;
}

std::uint64_t LatencyBreakdown::Count(Stage stage) const {
  std::uint64_t sum = 0;
  for (std::size_t o = 0; o < kOrigins; ++o) {
    sum += counts_[Index(stage, static_cast<Origin>(o))];
  }
  return sum;
}

std::uint64_t LatencyBreakdown::AttributedNs(Origin origin) const {
  std::uint64_t sum = 0;
  for (auto s = static_cast<std::size_t>(Stage::kQueueWait);
       s <= static_cast<std::size_t>(Stage::kCellOp); ++s) {
    sum += totals_[Index(static_cast<Stage>(s), origin)];
  }
  return sum;
}

std::string LatencyBreakdown::Summary() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-12s %10s %12s %10s %10s\n", "stage",
                "count", "total_ms", "mean_us", "p99_us");
  out += line;
  for (std::size_t s = 0; s < kStages; ++s) {
    const auto stage = static_cast<Stage>(s);
    const std::uint64_t n = Count(stage);
    if (n == 0) continue;
    const Histogram& h = hist_[s];
    std::snprintf(line, sizeof(line), "%-12s %10llu %12.3f %10.2f %10.2f\n",
                  StageName(stage), static_cast<unsigned long long>(n),
                  static_cast<double>(TotalNs(stage)) / 1e6,
                  h.Mean() / 1e3, static_cast<double>(h.P99()) / 1e3);
    out += line;
  }
  return out;
}

void LatencyBreakdown::Reset() {
  for (auto& v : totals_) v = 0;
  for (auto& v : counts_) v = 0;
  for (auto& h : hist_) h.Reset();
}

}  // namespace postblock::trace
