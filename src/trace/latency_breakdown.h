#ifndef POSTBLOCK_TRACE_LATENCY_BREAKDOWN_H_
#define POSTBLOCK_TRACE_LATENCY_BREAKDOWN_H_

#include <cstdint>
#include <string>

#include "common/histogram.h"
#include "trace/trace.h"

namespace postblock::trace {

/// Folds stage events into per-stage latency histograms and per
/// (stage, origin) nanosecond totals as they are recorded, so the
/// answer to "where did the microseconds go" survives even after the
/// event ring has wrapped. Fixed-size arrays, no allocation per event
/// (Histogram buckets are allocated once at construction).
class LatencyBreakdown {
 public:
  void Add(Stage stage, Origin origin, std::uint64_t dur_ns) {
    const std::size_t i = Index(stage, origin);
    totals_[i] += dur_ns;
    counts_[i] += 1;
    hist_[static_cast<std::size_t>(stage)].Record(dur_ns);
  }

  /// Total nanoseconds recorded for a stage, one origin or all.
  std::uint64_t TotalNs(Stage stage, Origin origin) const {
    return totals_[Index(stage, origin)];
  }
  std::uint64_t TotalNs(Stage stage) const;

  std::uint64_t Count(Stage stage, Origin origin) const {
    return counts_[Index(stage, origin)];
  }
  std::uint64_t Count(Stage stage) const;

  /// Duration distribution of one stage across all origins.
  const Histogram& hist(Stage stage) const {
    return hist_[static_cast<std::size_t>(stage)];
  }

  /// Sum of the per-IO attribution stages (kQueueWait..kCellOp) for one
  /// origin — for a single-page host IO this equals the kIo end-to-end
  /// total, the tiling invariant the trace tests assert.
  std::uint64_t AttributedNs(Origin origin) const;

  /// Multi-line human-readable table of the non-empty stages.
  std::string Summary() const;

  void Reset();

 private:
  static constexpr std::size_t kStages =
      static_cast<std::size_t>(Stage::kCount);
  static constexpr std::size_t kOrigins =
      static_cast<std::size_t>(Origin::kCount);

  static std::size_t Index(Stage stage, Origin origin) {
    return static_cast<std::size_t>(stage) * kOrigins +
           static_cast<std::size_t>(origin);
  }

  std::uint64_t totals_[kStages * kOrigins] = {};
  std::uint64_t counts_[kStages * kOrigins] = {};
  Histogram hist_[kStages];
};

}  // namespace postblock::trace

#endif  // POSTBLOCK_TRACE_LATENCY_BREAKDOWN_H_
