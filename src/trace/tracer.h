#ifndef POSTBLOCK_TRACE_TRACER_H_
#define POSTBLOCK_TRACE_TRACER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "trace/latency_breakdown.h"
#include "trace/trace.h"

namespace postblock::trace {

/// One recorded stage interval in sim time. 48 bytes, stored by value
/// in the ring — recording is a couple of stores, never an allocation.
struct TraceEvent {
  SimTime start = 0;
  SimTime end = 0;
  SpanId span = 0;
  SpanId parent = 0;
  std::uint64_t arg = 0;  // stage-specific detail (LBA, PPA, bytes...)
  std::uint32_t track = 0;
  Stage stage = Stage::kIo;
  Origin origin = Origin::kMeta;

  std::uint64_t dur() const { return end - start; }
};

/// The cross-layer tracing core: a fixed-capacity ring of TraceEvents
/// plus the running LatencyBreakdown. One Tracer is shared by every
/// layer of a simulated stack; layers hold a raw pointer and call the
/// inline Record() which is a no-op branch when disabled. All memory
/// is allocated up front (ring) or on the cold path (track registry),
/// so the simulator hot path stays zero-alloc with tracing on or off.
///
/// Ring overflow keeps the newest events (oldest are overwritten) and
/// counts the drops; the LatencyBreakdown always sees every event, so
/// aggregate attribution is exact even when the timeline is truncated.
class Tracer {
 public:
  /// `capacity` is rounded up to a power of two (min 16).
  explicit Tracer(std::size_t capacity = 1 << 16);

  /// Master switch. Off: NewSpan() returns 0 and Record() is a single
  /// predictable branch. On: spans are minted and events recorded.
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  SpanId NewSpan() { return enabled_ ? ++last_span_ : 0; }

  /// Registers (or looks up) a named timeline. Tracks group events for
  /// the exporter: pid = layer (kPidHost/...), tid assigned per pid in
  /// registration order. Cold path — instrument constructors call it.
  std::uint32_t RegisterTrack(std::uint32_t pid, const std::string& name);

  /// Records one stage interval. Call only after checking enabled()
  /// (it re-checks, so a miss is safe — just wasted argument setup).
  void Record(Stage stage, Origin origin, SpanId span, SpanId parent,
              std::uint32_t track, SimTime start, SimTime end,
              std::uint64_t arg = 0) {
    if (!enabled_) return;
    breakdown_.Add(stage, origin, end - start);
    TraceEvent& e = ring_[next_++ & mask_];
    e.start = start;
    e.end = end;
    e.span = span;
    e.parent = parent;
    e.arg = arg;
    e.track = track;
    e.stage = stage;
    e.origin = origin;
  }

  /// Zero-duration marker (merge decisions, victim picks, retirements).
  void Mark(Stage stage, Origin origin, SpanId span, std::uint32_t track,
            SimTime at, std::uint64_t arg = 0) {
    Record(stage, origin, span, 0, track, at, at, arg);
  }

  std::size_t capacity() const { return mask_ + 1; }
  std::uint64_t total_recorded() const { return next_; }
  std::uint64_t dropped() const {
    return next_ > capacity() ? next_ - capacity() : 0;
  }
  std::size_t size() const {
    return next_ < capacity() ? static_cast<std::size_t>(next_)
                              : capacity();
  }

  /// Visits retained events oldest-first.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const std::uint64_t begin = dropped();
    for (std::uint64_t i = begin; i < next_; ++i) {
      fn(ring_[i & mask_]);
    }
  }

  struct TrackInfo {
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    std::string name;
  };
  const std::vector<TrackInfo>& tracks() const { return tracks_; }

  const LatencyBreakdown& breakdown() const { return breakdown_; }

  /// Clears events and aggregates; keeps tracks and span numbering (so
  /// a warmup can be discarded without re-registering instruments).
  void ResetEvents();

 private:
  bool enabled_ = false;
  std::uint64_t last_span_ = 0;
  std::uint64_t next_ = 0;
  std::uint64_t mask_ = 0;
  std::vector<TraceEvent> ring_;
  std::vector<TrackInfo> tracks_;
  LatencyBreakdown breakdown_;
};

}  // namespace postblock::trace

#endif  // POSTBLOCK_TRACE_TRACER_H_
