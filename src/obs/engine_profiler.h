#ifndef POSTBLOCK_OBS_ENGINE_PROFILER_H_
#define POSTBLOCK_OBS_ENGINE_PROFILER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "common/types.h"
#include "sim/sharded_engine.h"

namespace postblock::obs {

/// Folded per-shard execution totals over every observed window. The
/// three wall buckets tile each window's wall span exactly:
///
///   idle    = window wall begin -> shard's slice began (the shard sat
///             behind other shards on its worker, or its worker hadn't
///             been released yet)
///   busy    = the shard's own RunUntil wall span
///   barrier = shard's slice ended -> last shard acked (the shard's
///             results waited for the stragglers — imbalance, directly)
///
/// so busy + idle + barrier == Σ window wall spans per shard, an exact
/// conservation identity tests can hold to the nanosecond.
struct ShardProfile {
  std::uint64_t busy_wall_ns = 0;
  std::uint64_t idle_wall_ns = 0;
  std::uint64_t barrier_wall_ns = 0;
  std::uint64_t events = 0;
  std::uint64_t windows_active = 0;  // windows with >= 1 committed event
  std::uint64_t windows_idle = 0;    // windows entered with nothing pending

  double Utilization() const {
    const std::uint64_t total = busy_wall_ns + idle_wall_ns + barrier_wall_ns;
    return total == 0 ? 0.0
                      : static_cast<double>(busy_wall_ns) /
                            static_cast<double>(total);
  }
};

/// Per-helper generation-barrier totals (worker ids >= 1; worker 0 is
/// the coordinator and never stalls at the barrier).
struct WorkerProfile {
  std::uint64_t stalls = 0;
  std::uint64_t stall_wall_ns = 0;
};

/// One retained window for the wall-time timeline export.
struct WindowRecord {
  struct ShardSpan {
    std::uint64_t wall_begin_ns = 0;
    std::uint64_t wall_end_ns = 0;
    std::uint64_t events = 0;
    std::uint32_t worker = 0;
    bool idle = false;  // entered the window with nothing pending
  };
  std::uint64_t round = 0;
  SimTime floor = 0;  // sim-time window bounds [floor, end]
  SimTime end = 0;
  std::uint64_t wall_begin_ns = 0;
  std::uint64_t wall_end_ns = 0;
  std::vector<ShardSpan> shards;
};

struct EngineProfilerConfig {
  /// Windows retained for the Perfetto timeline (oldest dropped first).
  /// Folded totals (ShardProfile etc.) cover every *sampled* window.
  std::size_t max_window_records = 4096;

  /// Window sampling stride handed to the engine (EngineObserver::
  /// WallSampleStride): hooks fire on every N-th window only. Windows
  /// run ~a few µs, so full observation costs double-digit percent;
  /// the default 16 keeps an attached profiler under the 2% overhead
  /// gate while per-shard utilization, slack percentiles, and the
  /// flow matrix stay unbiased (every identity is exact over the
  /// sampled set). Set 1 for exhaustive capture — the conservation
  /// tests do. Never affects the schedule, only what is recorded.
  std::uint32_t sample_every = 16;
};

/// Dual-clock execution profiler for sim::ShardedEngine: attach via
/// `ShardedConfig::observer = &profiler`. Answers "where does parallel
/// speedup die" with per-shard busy/idle/barrier wall attribution, a
/// lookahead-slack histogram (how far past the window floor each
/// shard's next event sat — the parallelism the seam pricing left
/// unused), a cross-shard message-flow matrix, and helper-thread
/// barrier-stall totals.
///
/// Sampling: by default every 16th window is observed in full (config
/// sample_every; 1 = exhaustive). All folded totals, the ring, and
/// windows_observed() cover the sampled windows only; conservation
/// identities hold exactly over that set, and rates/ratios (per-shard
/// utilization, slack percentiles, flow-matrix shares) are unbiased.
///
/// Threading: worker threads write only their shards' padded scratch
/// slots (and their own WorkerProfile); the coordinator folds all
/// scratch into the totals at OnWindowEnd, under the engine's existing
/// ack-release/acquire pair — no locks, no atomics of its own. All
/// accessors are coordinator-side (between windows or after Run()).
///
/// Neutrality: the profiler only reads engine state (the slack probe
/// is Simulator::MinPendingTime, non-committing) and nothing it
/// computes feeds back — attaching it is schedule-byte-identical,
/// proven in tests/obs_test.cc and held by check_perf gate 9.
class EngineProfiler final : public sim::EngineObserver {
 public:
  explicit EngineProfiler(EngineProfilerConfig config = {});

  // --- sim::EngineObserver hooks --------------------------------------
  void OnAttach(const sim::ShardedConfig& config) override;
  void OnWindowBegin(std::uint64_t round, SimTime floor, SimTime end,
                     std::uint64_t wall_begin_ns) override;
  void OnShardWindow(std::uint64_t round, std::uint32_t shard,
                     std::uint32_t worker, SimTime floor,
                     SimTime min_pending_before, std::uint64_t events_delta,
                     std::uint64_t wall_begin_ns,
                     std::uint64_t wall_end_ns) override;
  void OnWindowEnd(std::uint64_t round, std::uint64_t wall_end_ns) override;
  void OnMessage(std::uint32_t from, std::uint32_t to, SimTime when) override;
  void OnWorkerStall(std::uint32_t worker,
                     std::uint64_t stall_wall_ns) override;
  std::uint32_t WallSampleStride() const override {
    return config_.sample_every;
  }

  // --- Folded results (coordinator-side) ------------------------------
  std::uint32_t shards() const {
    return static_cast<std::uint32_t>(shard_profiles_.size());
  }
  std::uint32_t workers() const { return workers_; }
  const std::vector<ShardProfile>& shard_profiles() const {
    return shard_profiles_;
  }
  const std::vector<WorkerProfile>& worker_profiles() const {
    return worker_profiles_;
  }
  /// Lookahead slack (MinPendingTime - window floor), sim-ns, over
  /// every non-idle shard-window.
  const Histogram& slack_hist() const { return slack_hist_; }
  /// Cross-shard message counts, row-major [from * shards + to].
  const std::vector<std::uint64_t>& message_matrix() const {
    return message_matrix_;
  }
  std::uint64_t messages() const { return messages_; }
  std::uint64_t windows_observed() const { return windows_observed_; }
  /// Σ wall span of every observed window (the conservation total).
  std::uint64_t total_window_wall_ns() const { return total_window_wall_ns_; }
  /// Retained per-window detail, oldest first (copied out of the
  /// bounded circular ring).
  std::vector<WindowRecord> windows() const;
  std::uint64_t windows_retained() const { return window_ring_.size(); }
  std::uint64_t windows_dropped() const { return windows_dropped_; }

  /// Clears folded totals and the window ring; keeps the attachment.
  void Reset();

  // --- Export ----------------------------------------------------------
  /// Wall-time Perfetto timeline in Chrome trace JSON: one "windows"
  /// track plus one track per shard under pid trace::kPidEngineWall,
  /// timestamps rebased to the first observed window. Parseable by
  /// trace::ParseChromeTrace; mergeable with a sim-time trace via
  /// MergedChromeJson.
  std::string ToChromeJson() const;

  /// Splices this profiler's wall-time events into an existing Chrome
  /// trace JSON document (e.g. trace::ToChromeJson output), so the
  /// sim-time and wall-time tracks coexist in one Perfetto view.
  std::string MergedChromeJson(const std::string& sim_trace_json) const;

  /// The git-SHA-stamped profile report. `meta_fields` is spliced
  /// verbatim into the "meta" object (same contract as
  /// metrics::TimeSeries::WriteJson; callers build it with
  /// bench::MetaJsonFields).
  std::string ReportJson(const std::string& meta_fields = "") const;
  Status WriteReport(const std::string& path,
                     const std::string& meta_fields = "") const;

 private:
  /// Worker-written per-shard scratch for the in-flight window. Padded
  /// so two workers never share a line; reset by the coordinator
  /// before the next release.
  struct alignas(64) ShardScratch {
    std::uint64_t wall_begin_ns = 0;
    std::uint64_t wall_end_ns = 0;
    std::uint64_t events = 0;
    SimTime min_pending = 0;
    std::uint32_t worker = 0;
    bool ran = false;
  };
  struct alignas(64) WorkerScratch {
    WorkerProfile profile;
  };

  EngineProfilerConfig config_;
  std::uint32_t workers_ = 0;
  SimTime lookahead_ = 0;

  // In-flight window (coordinator-written except scratch slots).
  std::uint64_t window_wall_begin_ns_ = 0;
  SimTime window_floor_ = 0;
  SimTime window_end_ = 0;
  std::vector<ShardScratch> scratch_;
  std::vector<WorkerScratch> worker_scratch_;

  // Folded totals (coordinator-only).
  std::vector<ShardProfile> shard_profiles_;
  std::vector<WorkerProfile> worker_profiles_;
  Histogram slack_hist_;
  std::vector<std::uint64_t> message_matrix_;
  std::uint64_t messages_ = 0;
  std::uint64_t windows_observed_ = 0;
  std::uint64_t total_window_wall_ns_ = 0;
  std::uint64_t first_window_wall_ns_ = 0;
  /// Circular once full: ring_head_ is the oldest record. Slots are
  /// overwritten in place (the per-shard vector's storage is reused)
  /// so a full ring appends in O(shards), not O(ring).
  std::vector<WindowRecord> window_ring_;
  std::size_t ring_head_ = 0;
  std::uint64_t windows_dropped_ = 0;

  /// Calls fn(record) oldest-first without copying the ring.
  template <typename Fn>
  void ForEachWindow(Fn&& fn) const {
    const std::size_t n = window_ring_.size();
    for (std::size_t k = 0; k < n; ++k) {
      fn(window_ring_[(ring_head_ + k) % n]);
    }
  }
};

}  // namespace postblock::obs

#endif  // POSTBLOCK_OBS_ENGINE_PROFILER_H_
