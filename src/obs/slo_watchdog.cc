#include "obs/slo_watchdog.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/json.h"
#include "trace/trace.h"

namespace postblock::obs {

const char* SloKindName(SloKind kind) {
  switch (kind) {
    case SloKind::kMaxP50:
      return "max_p50";
    case SloKind::kMaxP99:
      return "max_p99";
    case SloKind::kMaxP999:
      return "max_p999";
    case SloKind::kMaxWindowMax:
      return "max_window_max";
    case SloKind::kMinThroughput:
      return "min_throughput";
    case SloKind::kMaxGauge:
      return "max_gauge";
    case SloKind::kMinGauge:
      return "min_gauge";
  }
  return "?";
}

namespace {

const char* HistSuffix(SloKind kind) {
  switch (kind) {
    case SloKind::kMaxP50:
      return ".p50";
    case SloKind::kMaxP99:
      return ".p99";
    case SloKind::kMaxP999:
      return ".p999";
    case SloKind::kMaxWindowMax:
      return ".max";
    default:
      return nullptr;
  }
}

int FindColumn(const metrics::TimeSeries& series, const std::string& name) {
  const auto& cols = series.columns();
  for (std::size_t i = 0; i < cols.size(); ++i) {
    if (cols[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

SloWatchdog::SloWatchdog(std::vector<SloSpec> specs)
    : specs_(std::move(specs)),
      resolved_(specs_.size()),
      counts_(specs_.size(), 0) {}

void SloWatchdog::AttachTrace(trace::Tracer* tracer, std::uint32_t track) {
  tracer_ = tracer;
  track_ = track;
}

void SloWatchdog::Resolve(const metrics::TimeSeries& series, std::size_t i) {
  Resolved& r = resolved_[i];
  r.attempted = true;
  const SloSpec& spec = specs_[i];
  if (const char* suffix = HistSuffix(spec.kind)) {
    r.value_col = FindColumn(series, spec.metric + suffix);
    r.window_count_col = FindColumn(series, spec.metric + ".window_count");
  } else {
    r.value_col = FindColumn(series, spec.metric);
  }
}

void SloWatchdog::OnSample(const metrics::TimeSeries& series,
                           std::size_t row) {
  const SimTime at = series.timestamps()[row];
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (!resolved_[i].attempted) Resolve(series, i);
    const Resolved& r = resolved_[i];
    if (r.value_col < 0) continue;
    const SloSpec& spec = specs_[i];
    const metrics::Column& col =
        series.columns()[static_cast<std::size_t>(r.value_col)];

    double observed = 0;
    bool breach = false;
    switch (spec.kind) {
      case SloKind::kMaxP50:
      case SloKind::kMaxP99:
      case SloKind::kMaxP999:
      case SloKind::kMaxWindowMax: {
        if (r.window_count_col >= 0) {
          const metrics::Column& wc =
              series.columns()[static_cast<std::size_t>(r.window_count_col)];
          if (wc.u64[row] < spec.min_window_count) break;
        }
        observed = static_cast<double>(col.u64[row]);
        breach = observed > spec.bound;
        break;
      }
      case SloKind::kMinThroughput: {
        // Rate over the actual row spacing: baseline row (row 0) and
        // zero-dt duplicate rows can't be rated, so they never breach.
        if (row == 0) break;
        const SimTime dt = at - series.timestamps()[row - 1];
        if (dt == 0) break;
        const std::uint64_t delta = metrics::TimeSeries::DeltaU64(col, row);
        observed = static_cast<double>(delta) * 1e9 /
                   static_cast<double>(dt);
        breach = observed < spec.bound;
        break;
      }
      case SloKind::kMaxGauge:
        observed = col.f64[row];
        breach = observed > spec.bound;
        break;
      case SloKind::kMinGauge:
        observed = col.f64[row];
        breach = observed < spec.bound;
        break;
    }

    if (!breach) continue;
    ++counts_[i];
    breaches_.push_back(SloBreach{static_cast<std::uint32_t>(i), at,
                                  observed, spec.bound});
    if (tracer_ != nullptr) {
      tracer_->Mark(trace::Stage::kSlo, trace::Origin::kMeta, 0, track_, at,
                    static_cast<std::uint64_t>(i));
    }
  }
}

std::uint64_t SloWatchdog::unresolved_specs() const {
  std::uint64_t n = 0;
  for (const Resolved& r : resolved_) {
    if (r.attempted && r.value_col < 0) ++n;
  }
  return n;
}

std::uint64_t SloWatchdog::Digest() const {
  // FNV-1a over the (slo, at, observed-bits) sequence: order-sensitive
  // so reordered or extra breaches change it.
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (b * 8)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  for (const SloBreach& b : breaches_) {
    mix(b.slo);
    mix(static_cast<std::uint64_t>(b.at));
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(b.observed));
    __builtin_memcpy(&bits, &b.observed, sizeof(bits));
    mix(bits);
  }
  return h;
}

std::string SloWatchdog::ReportJson(std::size_t max_breaches_listed) const {
  std::string out = "{\n    \"slos\": [\n";
  char buf[512];
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const SloSpec& s = specs_[i];
    const bool unresolved = resolved_[i].attempted &&
                            resolved_[i].value_col < 0;
    std::snprintf(buf, sizeof(buf),
                  "      {\"name\": \"%s\", \"metric\": \"%s\", "
                  "\"kind\": \"%s\", \"bound\": %.6g, \"breaches\": %" PRIu64
                  "%s}%s\n",
                  JsonEscaped(s.name).c_str(), JsonEscaped(s.metric).c_str(),
                  SloKindName(s.kind), s.bound, counts_[i],
                  unresolved ? ", \"unresolved\": true" : "",
                  i + 1 < specs_.size() ? "," : "");
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "    ],\n    \"total_breaches\": %zu,\n"
                "    \"digest\": \"%016" PRIx64 "\",\n    \"events\": [\n",
                breaches_.size(), Digest());
  out += buf;
  const std::size_t listed = std::min(breaches_.size(), max_breaches_listed);
  for (std::size_t i = 0; i < listed; ++i) {
    const SloBreach& b = breaches_[i];
    std::snprintf(buf, sizeof(buf),
                  "      {\"slo\": \"%s\", \"at_ns\": %" PRIu64
                  ", \"observed\": %.6g, \"bound\": %.6g}%s\n",
                  JsonEscaped(specs_[b.slo].name).c_str(),
                  static_cast<std::uint64_t>(b.at), b.observed, b.bound,
                  i + 1 < listed ? "," : "");
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "    ],\n    \"events_truncated\": %zu\n  }",
                breaches_.size() - listed);
  out += buf;
  return out;
}

}  // namespace postblock::obs
