#include "obs/engine_profiler.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <fstream>

#include "trace/trace.h"

namespace postblock::obs {

namespace {

void Appendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out->append(buf, std::min(static_cast<std::size_t>(n),
                                       sizeof(buf) - 1));
}

}  // namespace

EngineProfiler::EngineProfiler(EngineProfilerConfig config)
    : config_(config) {}

void EngineProfiler::OnAttach(const sim::ShardedConfig& config) {
  workers_ = config.workers;
  lookahead_ = config.lookahead;
  scratch_.assign(config.shards, ShardScratch{});
  // One stall slot per helper (ids 1..workers-1); index by worker id
  // so slot 0 exists but stays zero.
  const std::uint32_t slots = config.workers > 1 ? config.workers : 1;
  worker_scratch_.assign(slots, WorkerScratch{});
  shard_profiles_.assign(config.shards, ShardProfile{});
  worker_profiles_.assign(slots, WorkerProfile{});
  message_matrix_.assign(
      static_cast<std::size_t>(config.shards) * config.shards, 0);
  slack_hist_.Reset();
  messages_ = 0;
  windows_observed_ = 0;
  total_window_wall_ns_ = 0;
  first_window_wall_ns_ = 0;
  window_ring_.clear();
  ring_head_ = 0;
  windows_dropped_ = 0;
}

void EngineProfiler::Reset() {
  for (auto& p : shard_profiles_) p = ShardProfile{};
  for (auto& p : worker_profiles_) p = WorkerProfile{};
  for (auto& s : worker_scratch_) s.profile = WorkerProfile{};
  std::fill(message_matrix_.begin(), message_matrix_.end(), 0);
  slack_hist_.Reset();
  messages_ = 0;
  windows_observed_ = 0;
  total_window_wall_ns_ = 0;
  first_window_wall_ns_ = 0;
  window_ring_.clear();
  ring_head_ = 0;
  windows_dropped_ = 0;
}

void EngineProfiler::OnWindowBegin(std::uint64_t round, SimTime floor,
                                   SimTime end,
                                   std::uint64_t wall_begin_ns) {
  (void)round;
  window_wall_begin_ns_ = wall_begin_ns;
  window_floor_ = floor;
  window_end_ = end;
  if (first_window_wall_ns_ == 0) first_window_wall_ns_ = wall_begin_ns;
}

void EngineProfiler::OnShardWindow(std::uint64_t round, std::uint32_t shard,
                                   std::uint32_t worker, SimTime floor,
                                   SimTime min_pending_before,
                                   std::uint64_t events_delta,
                                   std::uint64_t wall_begin_ns,
                                   std::uint64_t wall_end_ns) {
  (void)round;
  (void)floor;
  // Worker-side: one plain write per field into this shard's padded
  // slot. Visibility to the coordinator's OnWindowEnd fold rides the
  // engine's ack release/acquire barrier.
  ShardScratch& s = scratch_[shard];
  s.wall_begin_ns = wall_begin_ns;
  s.wall_end_ns = wall_end_ns;
  s.events = events_delta;
  s.min_pending = min_pending_before;
  s.worker = worker;
  s.ran = true;
}

void EngineProfiler::OnWindowEnd(std::uint64_t round,
                                 std::uint64_t wall_end_ns) {
  ++windows_observed_;
  total_window_wall_ns_ += wall_end_ns - window_wall_begin_ns_;

  // Claim a ring slot up front: grow until full, then overwrite the
  // oldest in place (reusing its shards storage — a full ring must
  // append in O(shards), this runs once per window).
  WindowRecord* rec = nullptr;
  if (config_.max_window_records > 0) {
    if (window_ring_.size() < config_.max_window_records) {
      window_ring_.emplace_back();
      rec = &window_ring_.back();
    } else {
      rec = &window_ring_[ring_head_];
      ring_head_ = (ring_head_ + 1) % window_ring_.size();
      ++windows_dropped_;
    }
    rec->round = round;
    rec->floor = window_floor_;
    rec->end = window_end_;
    rec->wall_begin_ns = window_wall_begin_ns_;
    rec->wall_end_ns = wall_end_ns;
    rec->shards.resize(scratch_.size());
  }

  for (std::size_t i = 0; i < scratch_.size(); ++i) {
    ShardScratch& s = scratch_[i];
    ShardProfile& p = shard_profiles_[i];
    if (s.ran) {
      // The conservation identity: the three buckets are differences
      // that telescope to exactly (window end - window begin).
      p.idle_wall_ns += s.wall_begin_ns - window_wall_begin_ns_;
      p.busy_wall_ns += s.wall_end_ns - s.wall_begin_ns;
      p.barrier_wall_ns += wall_end_ns - s.wall_end_ns;
      p.events += s.events;
      if (s.min_pending == sim::ShardedEngine::kNoEvent) {
        ++p.windows_idle;
      } else {
        slack_hist_.Record(s.min_pending - window_floor_);
        if (s.events > 0) ++p.windows_active;
      }
      if (rec != nullptr) {
        rec->shards[i] = WindowRecord::ShardSpan{
            s.wall_begin_ns, s.wall_end_ns, s.events, s.worker,
            s.min_pending == sim::ShardedEngine::kNoEvent};
      }
    } else if (rec != nullptr) {
      // Shouldn't happen (every shard runs every window), but keep
      // the record well-formed rather than reading stale scratch.
      rec->shards[i] = WindowRecord::ShardSpan{window_wall_begin_ns_,
                                               window_wall_begin_ns_, 0, 0,
                                               true};
    }
    s.ran = false;
  }

  // Fold helper stall scratch (helpers wrote before their acks).
  for (std::size_t w = 0; w < worker_scratch_.size(); ++w) {
    worker_profiles_[w] = worker_scratch_[w].profile;
  }
}

std::vector<WindowRecord> EngineProfiler::windows() const {
  std::vector<WindowRecord> out;
  out.reserve(window_ring_.size());
  ForEachWindow([&out](const WindowRecord& w) { out.push_back(w); });
  return out;
}

void EngineProfiler::OnMessage(std::uint32_t from, std::uint32_t to,
                               SimTime when) {
  (void)when;
  ++messages_;
  const std::size_t n = shard_profiles_.size();
  if (from < n && to < n) ++message_matrix_[from * n + to];
}

void EngineProfiler::OnWorkerStall(std::uint32_t worker,
                                   std::uint64_t stall_wall_ns) {
  if (worker >= worker_scratch_.size()) return;
  WorkerProfile& p = worker_scratch_[worker].profile;
  ++p.stalls;
  p.stall_wall_ns += stall_wall_ns;
}

std::string EngineProfiler::ToChromeJson() const {
  std::string out;
  out.reserve(4096 + window_ring_.size() * (96 + scratch_.size() * 128));
  out += "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";

  const std::uint32_t pid = trace::kPidEngineWall;
  Appendf(&out,
          "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
          "\"args\":{\"name\":\"engine-wall\"}},\n",
          pid);
  Appendf(&out,
          "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,\"tid\":0,"
          "\"args\":{\"name\":\"windows\"}},\n",
          pid);
  for (std::size_t s = 0; s < shard_profiles_.size(); ++s) {
    Appendf(&out,
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,"
            "\"tid\":%zu,\"args\":{\"name\":\"shard %zu\"}},\n",
            pid, s + 1, s);
  }

  // Rebase to the first observed window so timestamps are readable.
  const std::uint64_t t0 = first_window_wall_ns_;
  ForEachWindow([&](const WindowRecord& w) {
    Appendf(&out,
            "{\"name\":\"window\",\"cat\":\"engine\",\"ph\":\"X\","
            "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%u,\"tid\":0,"
            "\"args\":{\"span\":%" PRIu64 ",\"parent\":%" PRIu64
            ",\"arg\":%" PRIu64 "}},\n",
            static_cast<double>(w.wall_begin_ns - t0) / 1e3,
            static_cast<double>(w.wall_end_ns - w.wall_begin_ns) / 1e3,
            pid, w.round, static_cast<std::uint64_t>(w.floor),
            static_cast<std::uint64_t>(w.end));
    for (std::size_t s = 0; s < w.shards.size(); ++s) {
      const WindowRecord::ShardSpan& span = w.shards[s];
      Appendf(&out,
              "{\"name\":\"%s\",\"cat\":\"engine\",\"ph\":\"X\","
              "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%u,\"tid\":%zu,"
              "\"args\":{\"span\":%" PRIu64 ",\"parent\":%u,\"arg\":%" PRIu64
              "}},\n",
              span.idle ? "idle" : "busy",
              static_cast<double>(span.wall_begin_ns - t0) / 1e3,
              static_cast<double>(span.wall_end_ns - span.wall_begin_ns) /
                  1e3,
              pid, s + 1, w.round, span.worker, span.events);
    }
  });

  if (out.size() >= 2 && out[out.size() - 2] == ',') {
    out.erase(out.size() - 2, 1);
  }
  out += "]\n}\n";
  return out;
}

std::string EngineProfiler::MergedChromeJson(
    const std::string& sim_trace_json) const {
  // Splice our events (everything inside this trace's traceEvents
  // array) in front of the host document's array contents.
  const std::string mine = ToChromeJson();
  const std::size_t my_open = mine.find('[');
  const std::size_t my_close = mine.rfind(']');
  const std::size_t host_arr = sim_trace_json.find("\"traceEvents\"");
  if (my_open == std::string::npos || my_close == std::string::npos ||
      host_arr == std::string::npos) {
    return mine;
  }
  const std::size_t host_open = sim_trace_json.find('[', host_arr);
  if (host_open == std::string::npos) return mine;
  std::string events = mine.substr(my_open + 1, my_close - my_open - 1);
  // Trim whitespace and ensure a trailing comma before host events.
  while (!events.empty() &&
         (events.back() == '\n' || events.back() == ' ')) {
    events.pop_back();
  }
  if (!events.empty() && events.back() != ',') events += ',';
  std::string out = sim_trace_json;
  out.insert(host_open + 1, "\n" + events);
  return out;
}

std::string EngineProfiler::ReportJson(
    const std::string& meta_fields) const {
  std::string out;
  out.reserve(2048 + shard_profiles_.size() * 256);
  Appendf(&out, "{\n  \"meta\": {%s},\n", meta_fields.c_str());
  Appendf(&out,
          "  \"engine\": {\"shards\": %zu, \"workers\": %u, "
          "\"lookahead_ns\": %" PRIu64 ", \"sample_every\": %u},\n",
          shard_profiles_.size(), workers_,
          static_cast<std::uint64_t>(lookahead_), config_.sample_every);
  Appendf(&out,
          "  \"windows\": %" PRIu64 ",\n  \"messages\": %" PRIu64
          ",\n  \"wall_window_ns\": %" PRIu64 ",\n",
          windows_observed_, messages_, total_window_wall_ns_);

  out += "  \"shards\": [\n";
  for (std::size_t i = 0; i < shard_profiles_.size(); ++i) {
    const ShardProfile& p = shard_profiles_[i];
    Appendf(&out,
            "    {\"shard\": %zu, \"busy_ns\": %" PRIu64
            ", \"idle_ns\": %" PRIu64 ", \"barrier_ns\": %" PRIu64
            ", \"events\": %" PRIu64 ", \"windows_active\": %" PRIu64
            ", \"windows_idle\": %" PRIu64 ", \"utilization\": %.4f}%s\n",
            i, p.busy_wall_ns, p.idle_wall_ns, p.barrier_wall_ns, p.events,
            p.windows_active, p.windows_idle, p.Utilization(),
            i + 1 < shard_profiles_.size() ? "," : "");
  }
  out += "  ],\n";

  Appendf(&out,
          "  \"lookahead_slack_ns\": {\"count\": %" PRIu64
          ", \"p50\": %" PRIu64 ", \"p99\": %" PRIu64 ", \"max\": %" PRIu64
          ", \"mean\": %.1f},\n",
          slack_hist_.count(), slack_hist_.P50(), slack_hist_.P99(),
          slack_hist_.max(), slack_hist_.Mean());

  out += "  \"workers\": [\n";
  for (std::size_t w = 1; w < worker_profiles_.size(); ++w) {
    const WorkerProfile& p = worker_profiles_[w];
    Appendf(&out,
            "    {\"worker\": %zu, \"stalls\": %" PRIu64
            ", \"stall_ns\": %" PRIu64 "}%s\n",
            w, p.stalls, p.stall_wall_ns,
            w + 1 < worker_profiles_.size() ? "," : "");
  }
  out += "  ],\n";

  out += "  \"message_matrix\": [";
  const std::size_t n = shard_profiles_.size();
  for (std::size_t from = 0; from < n; ++from) {
    out += from == 0 ? "\n    [" : ",\n    [";
    for (std::size_t to = 0; to < n; ++to) {
      Appendf(&out, "%s%" PRIu64, to == 0 ? "" : ", ",
              message_matrix_[from * n + to]);
    }
    out += "]";
  }
  Appendf(&out, "\n  ],\n  \"windows_retained\": %zu,\n",
          window_ring_.size());
  Appendf(&out, "  \"windows_dropped\": %" PRIu64 "\n}\n",
          windows_dropped_);
  return out;
}

Status EngineProfiler::WriteReport(const std::string& path,
                                   const std::string& meta_fields) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    return Status::NotFound("cannot open " + path + " for writing");
  }
  const std::string json = ReportJson(meta_fields);
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  f.close();
  if (!f) return Status::DataLoss("short write to " + path);
  return Status::Ok();
}

}  // namespace postblock::obs
