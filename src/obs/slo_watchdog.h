#ifndef POSTBLOCK_OBS_SLO_WATCHDOG_H_
#define POSTBLOCK_OBS_SLO_WATCHDOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "metrics/sampler.h"
#include "trace/tracer.h"

namespace postblock::obs {

/// What an SLO bounds. The histogram kinds read the Sampler's
/// per-window percentile sub-columns (each sampling interval in
/// isolation — a one-window p999 excursion breaches even if the
/// whole-run percentile stays healthy); throughput reads counter
/// deltas normalized over the actual row spacing; gauge kinds read the
/// sampled value directly (e.g. a queue-depth ceiling).
enum class SloKind : std::uint8_t {
  kMaxP50,        // metric is a histogram; bound on the window p50
  kMaxP99,        //   "            "        bound on the window p99
  kMaxP999,       //   "            "        bound on the window p999
  kMaxWindowMax,  //   "            "        bound on the window max
  kMinThroughput, // metric is a counter; bound is a floor in 1/sec
  kMaxGauge,      // metric is a gauge; ceiling on the sampled value
  kMinGauge,      //   "         "      floor on the sampled value
};

const char* SloKindName(SloKind kind);

/// One declarative service objective, evaluated every sample row.
struct SloSpec {
  std::string name;    // report label, e.g. "tenant-a read p99"
  std::string metric;  // registry metric name, e.g. "vbd.a.read_lat_ns"
  SloKind kind = SloKind::kMaxP99;
  double bound = 0;
  /// Histogram kinds only: skip windows with fewer samples than this
  /// (a single straggler in an otherwise-empty window is noise, not a
  /// breach). Throughput/gauge kinds ignore it.
  std::uint64_t min_window_count = 1;
};

/// One recorded violation: SLO `slo` observed `observed` against
/// `bound` at sim time `at` (the sample-row timestamp).
struct SloBreach {
  std::uint32_t slo = 0;
  SimTime at = 0;
  double observed = 0;
  double bound = 0;
};

/// Declarative sim-time SLO evaluation on the metrics Sampler grid:
/// attach via `sampler.set_observer(&watchdog)`. Every sample row is
/// checked against every spec; violations become typed SloBreach
/// records, per-SLO counters, optional markers on a trace track (the
/// PR 4 `health` track by convention), and a run-report JSON section.
///
/// Determinism and neutrality: the watchdog is a pure function of the
/// sampled sim-time series — it reads rows the Sampler already took,
/// schedules nothing, and mutates no metric, so attaching it cannot
/// perturb the device schedule, and two runs of the same workload
/// produce byte-identical breach sequences (tests hold Digest() equal
/// across runs; gate 9 holds breach detection deterministic).
class SloWatchdog final : public metrics::SampleObserver {
 public:
  explicit SloWatchdog(std::vector<SloSpec> specs);

  /// Also mark each breach on `track` of `tracer` (zero-duration
  /// Stage::kSlo event at the breach time, arg = SLO index). The
  /// caller registers the track — conventionally
  /// `tracer->RegisterTrack(trace::kPidFlash, "health")`, which dedups
  /// onto the PR 4 health track when the controller already made it.
  void AttachTrace(trace::Tracer* tracer, std::uint32_t track);

  /// metrics::SampleObserver: evaluate every spec against row `row`.
  void OnSample(const metrics::TimeSeries& series, std::size_t row) override;

  const std::vector<SloSpec>& specs() const { return specs_; }
  const std::vector<SloBreach>& breaches() const { return breaches_; }
  std::uint64_t breach_count(std::uint32_t slo) const {
    return slo < counts_.size() ? counts_[slo] : 0;
  }
  std::uint64_t total_breaches() const { return breaches_.size(); }
  /// Specs whose metric column never resolved (metric not registered
  /// before Sampler::Start froze the layout). Reported, not fatal.
  std::uint64_t unresolved_specs() const;

  /// Order-sensitive digest of the full breach sequence — the
  /// determinism witness (equal across reruns of the same workload).
  std::uint64_t Digest() const;

  /// Run-report JSON object: per-SLO status + the first breaches.
  std::string ReportJson(std::size_t max_breaches_listed = 16) const;

 private:
  /// Column indices resolved lazily at the first OnSample (the
  /// Sampler's layout is frozen at Start, which may be after this
  /// watchdog is constructed).
  struct Resolved {
    int value_col = -1;         // the column the bound applies to
    int window_count_col = -1;  // histogram kinds: the gating count
    bool attempted = false;
  };

  void Resolve(const metrics::TimeSeries& series, std::size_t i);

  std::vector<SloSpec> specs_;
  std::vector<Resolved> resolved_;
  std::vector<std::uint64_t> counts_;
  std::vector<SloBreach> breaches_;
  trace::Tracer* tracer_ = nullptr;
  std::uint32_t track_ = 0;
};

}  // namespace postblock::obs

#endif  // POSTBLOCK_OBS_SLO_WATCHDOG_H_
