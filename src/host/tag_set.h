#ifndef POSTBLOCK_HOST_TAG_SET_H_
#define POSTBLOCK_HOST_TAG_SET_H_

#include <cstdint>
#include <vector>

namespace postblock::host {

/// Fixed-size tag allocator for inflight IO state — the blk-mq
/// `blk_mq_tags` idea: a submission queue owns `capacity` tags; an IO
/// holds one tag from submit to completion, and the tag doubles as the
/// index of its per-IO state record, so inflight lookup is an array
/// index instead of a pooled pointer search.
///
/// Tags are recycled LIFO (deterministic, cache-warm). `Acquire` on an
/// exhausted set returns kNoTag — the caller's backpressure point (the
/// host cannot post to a full SQ).
///
/// When constructed with capacity 0 the set is *elastic*: Acquire never
/// fails and the tag space grows on demand — the pre-multi-queue
/// pooled-state behaviour, kept as the default so existing
/// configurations see no new failure mode.
class TagSet {
 public:
  static constexpr std::uint32_t kNoTag = ~0u;

  explicit TagSet(std::uint32_t capacity = 0) : capacity_(capacity) {
    if (capacity_ > 0) {
      free_.reserve(capacity_);
      // Reversed so tags grant in ascending order 0,1,2,... (matches
      // the elastic set's growth order; keeps schedules comparable).
      for (std::uint32_t t = capacity_; t > 0; --t) free_.push_back(t - 1);
    }
  }

  /// Returns a free tag, or kNoTag when a fixed-size set is exhausted.
  std::uint32_t Acquire() {
    if (!free_.empty()) {
      const std::uint32_t t = free_.back();
      free_.pop_back();
      ++in_use_;
      return t;
    }
    if (capacity_ > 0) return kNoTag;  // fixed set: backpressure
    ++in_use_;
    return next_elastic_++;
  }

  void Release(std::uint32_t tag) {
    free_.push_back(tag);
    --in_use_;
  }

  /// 0 = elastic (unbounded).
  std::uint32_t capacity() const { return capacity_; }
  std::uint32_t in_use() const { return in_use_; }
  bool exhausted() const {
    return capacity_ > 0 && in_use_ >= capacity_;
  }
  /// Highest tag ever granted + 1 (the size the state array must have).
  std::uint32_t high_water() const {
    return capacity_ > 0 ? capacity_ : next_elastic_;
  }

 private:
  std::uint32_t capacity_;
  std::uint32_t in_use_ = 0;
  std::uint32_t next_elastic_ = 0;  // elastic mode: next never-used tag
  std::vector<std::uint32_t> free_;
};

}  // namespace postblock::host

#endif  // POSTBLOCK_HOST_TAG_SET_H_
