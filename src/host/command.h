#ifndef POSTBLOCK_HOST_COMMAND_H_
#define POSTBLOCK_HOST_COMMAND_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "blocklayer/request.h"
#include "common/status.h"
#include "common/types.h"
#include "trace/trace.h"

namespace postblock::host {

/// The unified typed host command set — one tagged union over every way
/// a host talks to storage in this repo, replacing the three divergent
/// submit entry points (BlockLayer::Submit, DirectDriver::Submit,
/// HybridStore::SubmitAsync) with a single `Execute(Command)` on a
/// common `HostInterface`.
///
/// The first four kinds are the legacy block interface; the rest are
/// the paper's Section 4 "new interfaces" — commands a block device
/// cannot express, which is exactly why capability discovery
/// (`HostInterface::Supports`) is part of the API: a host must be able
/// to ask what the device underneath actually speaks.
enum class CommandKind : std::uint8_t {
  kRead = 0,
  kWrite,
  kTrim,
  kFlush,
  /// Multi-extent atomic write group (Ouyang et al. [17]): all extents
  /// become durable together or none survive recovery.
  kAtomicGroup,
  /// Nameless write (de Jonge / Arpaci-Dusseau): the host supplies data
  /// without naming an address; the device picks the location and
  /// returns its name in IoResult::tokens[0].
  kNamelessWrite,
  /// Advisory access hint; never fails, may be ignored.
  kHint,
  /// Read a page by its device-issued name (Command::lba carries the
  /// name). NotFound if the name is stale — e.g. the device migrated
  /// the page and already told the host via the migration handler; the
  /// host re-reads under its updated name.
  kNamelessRead,
  /// Release a named page (Command::lba carries the name) — the trim of
  /// the nameless vocabulary. The device never garbage-collects a
  /// host-managed page on its own; this command is how space dies.
  kNamelessFree,
};

constexpr std::size_t kNumCommandKinds = 9;

inline const char* CommandKindName(CommandKind kind) {
  switch (kind) {
    case CommandKind::kRead:
      return "read";
    case CommandKind::kWrite:
      return "write";
    case CommandKind::kTrim:
      return "trim";
    case CommandKind::kFlush:
      return "flush";
    case CommandKind::kAtomicGroup:
      return "atomic-group";
    case CommandKind::kNamelessWrite:
      return "nameless-write";
    case CommandKind::kHint:
      return "hint";
    case CommandKind::kNamelessRead:
      return "nameless-read";
    case CommandKind::kNamelessFree:
      return "nameless-free";
  }
  return "?";
}

/// Advisory hints (kHint). Modeled on posix_fadvise plus the
/// stream-separation idea the multi-queue path uses.
enum class HintKind : std::uint8_t {
  kSequential = 0,  // upcoming access is sequential
  kRandom,          // upcoming access is random
  kWillNeed,        // data will be read soon
  kDontNeed,        // data will not be reused
  kStreamOpen,      // `stream` begins a new write stream
  kStreamClose,     // `stream` ends
};

/// One typed host command. Field use by kind:
///   kRead            lba, nblocks
///   kWrite           lba, nblocks, tokens (one per block)
///   kTrim            lba, nblocks
///   kFlush           —
///   kAtomicGroup     group (extent = (lba, token))
///   kNamelessWrite   tokens[0] = payload; completion tokens[0] = name.
///                    Optional OOB stamp the device persists alongside
///                    the page (the de-indirection back-pointer): lba =
///                    owner tag, nblocks = owner epoch (0 = unstamped).
///   kHint            hint, optionally lba/nblocks/stream as its scope
///   kNamelessRead    lba = name; completion tokens[0] = payload
///   kNamelessFree    lba = name
/// `priority` and `stream` classify the command for scheduling on every
/// path; `on_complete` always fires exactly once.
struct Command {
  CommandKind kind = CommandKind::kRead;
  Lba lba = 0;
  std::uint32_t nblocks = 1;
  std::vector<std::uint64_t> tokens;
  std::uint8_t priority = 0;
  std::uint8_t stream = 0;
  /// kAtomicGroup extents.
  std::vector<std::pair<Lba, std::uint64_t>> group;
  /// kHint payload.
  HintKind hint = HintKind::kSequential;
  blocklayer::IoCallback on_complete;
  trace::SpanId span = 0;

  // ---- factories ---------------------------------------------------
  static Command Read(Lba lba, std::uint32_t nblocks,
                      blocklayer::IoCallback cb) {
    Command c;
    c.kind = CommandKind::kRead;
    c.lba = lba;
    c.nblocks = nblocks;
    c.on_complete = std::move(cb);
    return c;
  }
  static Command Write(Lba lba, std::vector<std::uint64_t> tokens,
                       blocklayer::IoCallback cb) {
    Command c;
    c.kind = CommandKind::kWrite;
    c.lba = lba;
    c.nblocks = static_cast<std::uint32_t>(tokens.size());
    c.tokens = std::move(tokens);
    c.on_complete = std::move(cb);
    return c;
  }
  static Command Trim(Lba lba, std::uint32_t nblocks,
                      blocklayer::IoCallback cb) {
    Command c;
    c.kind = CommandKind::kTrim;
    c.lba = lba;
    c.nblocks = nblocks;
    c.on_complete = std::move(cb);
    return c;
  }
  static Command Flush(blocklayer::IoCallback cb) {
    Command c;
    c.kind = CommandKind::kFlush;
    c.on_complete = std::move(cb);
    return c;
  }
  static Command AtomicGroup(
      std::vector<std::pair<Lba, std::uint64_t>> extents,
      blocklayer::IoCallback cb) {
    Command c;
    c.kind = CommandKind::kAtomicGroup;
    c.group = std::move(extents);
    c.on_complete = std::move(cb);
    return c;
  }
  static Command NamelessWrite(std::uint64_t token,
                               blocklayer::IoCallback cb) {
    Command c;
    c.kind = CommandKind::kNamelessWrite;
    c.tokens = {token};
    c.nblocks = 0;  // unstamped (no OOB owner tag)
    c.on_complete = std::move(cb);
    return c;
  }
  /// Nameless write with an OOB owner stamp: the device persists
  /// (owner, epoch) in the page's spare area, so a post-crash
  /// control-path scan can hand the host back (name, owner, epoch)
  /// tuples — the host rebuilds its own mapping without the device ever
  /// keeping one (Zhang et al.'s de-indirection back-pointers).
  static Command NamelessWriteTagged(std::uint64_t token,
                                     std::uint64_t owner,
                                     std::uint32_t epoch,
                                     blocklayer::IoCallback cb) {
    Command c;
    c.kind = CommandKind::kNamelessWrite;
    c.tokens = {token};
    c.lba = owner;
    c.nblocks = epoch;
    c.on_complete = std::move(cb);
    return c;
  }
  static Command NamelessRead(std::uint64_t name,
                              blocklayer::IoCallback cb) {
    Command c;
    c.kind = CommandKind::kNamelessRead;
    c.lba = name;
    c.on_complete = std::move(cb);
    return c;
  }
  static Command NamelessFree(std::uint64_t name,
                              blocklayer::IoCallback cb) {
    Command c;
    c.kind = CommandKind::kNamelessFree;
    c.lba = name;
    c.on_complete = std::move(cb);
    return c;
  }
  static Command Hint(HintKind hint, blocklayer::IoCallback cb = {}) {
    Command c;
    c.kind = CommandKind::kHint;
    c.hint = hint;
    c.on_complete = std::move(cb);
    return c;
  }
};

/// Capability-discovery answer (host::HostInterface::Caps): everything
/// a host needs to decide how to drive the stack, without reading the
/// device's construction-time config — the post-block analogue of an
/// NVMe Identify. Layers forward the call down and OR in what they add
/// themselves (e.g. HybridStore's PCM sync path).
struct DeviceCaps {
  /// Per-kind support, same bit layout as CapabilityMask().
  std::uint32_t command_mask = 0;
  /// Multi-extent atomic write groups execute natively.
  bool atomic_groups = false;
  /// Nameless write/read/free execute natively.
  bool nameless = false;
  /// Advisory hints are accepted (possibly ignored) rather than failed.
  bool hint_classes = false;
  /// Synchronous byte-granular persistence bypassing the block path
  /// (a PCM log behind SyncPersist) exists in this stack.
  bool pcm_sync = false;
  /// Physical-append mode: > 0 means the device runs host-managed
  /// regions (this many independent append points), keeps no L2P for
  /// them, and never garbage-collects host-managed pages on its own —
  /// the post-block device of the paper's Section 3.
  std::uint32_t append_regions = 0;
  /// Device-side mapping-table DRAM right now, in bytes. The crossover
  /// study's third axis: a full page-map FTL pays 8 B per logical page;
  /// an append-mode device pays per-block bookkeeping only.
  std::uint64_t mapping_table_bytes = 0;

  bool Supports(CommandKind kind) const {
    return (command_mask >> static_cast<int>(kind)) & 1u;
  }
};

/// Fired when the device relocates a host-managed page (refresh of a
/// decaying block, cooperative migration): (old name, new name). The
/// host updates its mapping; a read in flight under the old name
/// returns NotFound and is retried under the new one.
using MigrationHandler =
    std::function<void(std::uint64_t, std::uint64_t)>;

/// The unified host-facing interface: typed commands plus capability
/// discovery. Every stackable layer in the repo (the SSD device, the
/// block layer, the direct driver, the HDD, simple devices, and
/// core::HybridStore's async class) implements it, so a host program
/// is written once against `Execute`/`Supports` and wired over any
/// stack.
///
/// Contract: `Execute` must complete `cmd.on_complete` exactly once (in
/// simulated time for accepted commands; a command whose kind the layer
/// does not support completes inline with Unimplemented — callers that
/// care should check `Supports` first, which is the point of capability
/// discovery).
class HostInterface {
 public:
  virtual ~HostInterface() = default;

  /// Can this stack execute `kind`? Stacked layers forward the question
  /// to the layer below for kinds they merely pass through.
  virtual bool Supports(CommandKind kind) const {
    switch (kind) {
      case CommandKind::kRead:
      case CommandKind::kWrite:
      case CommandKind::kTrim:
      case CommandKind::kFlush:
        return true;
      default:
        return false;
    }
  }

  /// Executes one typed command.
  virtual void Execute(Command cmd) = 0;

  /// Capability discovery. The default derives everything derivable
  /// from Supports(); devices with richer truths (append regions,
  /// mapping DRAM) and layers that add capabilities of their own
  /// (HybridStore's PCM sync path) override or extend it. Hosts call
  /// this instead of reading device configs.
  virtual DeviceCaps Caps() const {
    DeviceCaps caps;
    caps.command_mask = CapabilityMask();
    caps.atomic_groups = caps.Supports(CommandKind::kAtomicGroup);
    caps.nameless = caps.Supports(CommandKind::kNamelessWrite) &&
                    caps.Supports(CommandKind::kNamelessRead) &&
                    caps.Supports(CommandKind::kNamelessFree);
    caps.hint_classes = caps.Supports(CommandKind::kHint);
    return caps;
  }

  /// Installs the host's migration handler for named pages. Stacked
  /// layers forward it to the device; the default drops it (a stack
  /// with no nameless support has nothing to migrate).
  virtual void SetMigrationHandler(MigrationHandler handler) {
    (void)handler;
  }

  /// Capability bitmask (bit = static_cast<int>(CommandKind)).
  std::uint32_t CapabilityMask() const {
    std::uint32_t mask = 0;
    for (std::size_t k = 0; k < kNumCommandKinds; ++k) {
      if (Supports(static_cast<CommandKind>(k))) mask |= 1u << k;
    }
    return mask;
  }
};

/// Lowers a basic (block-expressible) command to an IoRequest. Only
/// valid for kRead/kWrite/kTrim/kFlush.
inline blocklayer::IoRequest LowerToIoRequest(Command cmd) {
  blocklayer::IoRequest r;
  switch (cmd.kind) {
    case CommandKind::kRead:
      r.op = blocklayer::IoOp::kRead;
      break;
    case CommandKind::kWrite:
      r.op = blocklayer::IoOp::kWrite;
      break;
    case CommandKind::kTrim:
      r.op = blocklayer::IoOp::kTrim;
      break;
    case CommandKind::kFlush:
      r.op = blocklayer::IoOp::kFlush;
      break;
    default:
      r.op = blocklayer::IoOp::kRead;  // unreachable by contract
      break;
  }
  r.lba = cmd.lba;
  r.nblocks = cmd.nblocks;
  r.tokens = std::move(cmd.tokens);
  r.priority = cmd.priority;
  r.stream = cmd.stream;
  r.span = cmd.span;
  r.on_complete = std::move(cmd.on_complete);
  return r;
}

/// True for the four kinds the legacy block interface can express.
inline bool IsBlockExpressible(CommandKind kind) {
  switch (kind) {
    case CommandKind::kRead:
    case CommandKind::kWrite:
    case CommandKind::kTrim:
    case CommandKind::kFlush:
      return true;
    default:
      return false;
  }
}

}  // namespace postblock::host

#endif  // POSTBLOCK_HOST_COMMAND_H_
