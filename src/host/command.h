#ifndef POSTBLOCK_HOST_COMMAND_H_
#define POSTBLOCK_HOST_COMMAND_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "blocklayer/request.h"
#include "common/status.h"
#include "common/types.h"
#include "trace/trace.h"

namespace postblock::host {

/// The unified typed host command set — one tagged union over every way
/// a host talks to storage in this repo, replacing the three divergent
/// submit entry points (BlockLayer::Submit, DirectDriver::Submit,
/// HybridStore::SubmitAsync) with a single `Execute(Command)` on a
/// common `HostInterface`.
///
/// The first four kinds are the legacy block interface; the rest are
/// the paper's Section 4 "new interfaces" — commands a block device
/// cannot express, which is exactly why capability discovery
/// (`HostInterface::Supports`) is part of the API: a host must be able
/// to ask what the device underneath actually speaks.
enum class CommandKind : std::uint8_t {
  kRead = 0,
  kWrite,
  kTrim,
  kFlush,
  /// Multi-extent atomic write group (Ouyang et al. [17]): all extents
  /// become durable together or none survive recovery.
  kAtomicGroup,
  /// Nameless write (de Jonge / Arpaci-Dusseau): the host supplies data
  /// without naming an address; the device picks the location and
  /// returns its name in IoResult::tokens[0].
  kNamelessWrite,
  /// Advisory access hint; never fails, may be ignored.
  kHint,
};

constexpr std::size_t kNumCommandKinds = 7;

inline const char* CommandKindName(CommandKind kind) {
  switch (kind) {
    case CommandKind::kRead:
      return "read";
    case CommandKind::kWrite:
      return "write";
    case CommandKind::kTrim:
      return "trim";
    case CommandKind::kFlush:
      return "flush";
    case CommandKind::kAtomicGroup:
      return "atomic-group";
    case CommandKind::kNamelessWrite:
      return "nameless-write";
    case CommandKind::kHint:
      return "hint";
  }
  return "?";
}

/// Advisory hints (kHint). Modeled on posix_fadvise plus the
/// stream-separation idea the multi-queue path uses.
enum class HintKind : std::uint8_t {
  kSequential = 0,  // upcoming access is sequential
  kRandom,          // upcoming access is random
  kWillNeed,        // data will be read soon
  kDontNeed,        // data will not be reused
  kStreamOpen,      // `stream` begins a new write stream
  kStreamClose,     // `stream` ends
};

/// One typed host command. Field use by kind:
///   kRead            lba, nblocks
///   kWrite           lba, nblocks, tokens (one per block)
///   kTrim            lba, nblocks
///   kFlush           —
///   kAtomicGroup     group (extent = (lba, token))
///   kNamelessWrite   tokens[0] = payload; completion tokens[0] = name
///   kHint            hint, optionally lba/nblocks/stream as its scope
/// `priority` and `stream` classify the command for scheduling on every
/// path; `on_complete` always fires exactly once.
struct Command {
  CommandKind kind = CommandKind::kRead;
  Lba lba = 0;
  std::uint32_t nblocks = 1;
  std::vector<std::uint64_t> tokens;
  std::uint8_t priority = 0;
  std::uint8_t stream = 0;
  /// kAtomicGroup extents.
  std::vector<std::pair<Lba, std::uint64_t>> group;
  /// kHint payload.
  HintKind hint = HintKind::kSequential;
  blocklayer::IoCallback on_complete;
  trace::SpanId span = 0;

  // ---- factories ---------------------------------------------------
  static Command Read(Lba lba, std::uint32_t nblocks,
                      blocklayer::IoCallback cb) {
    Command c;
    c.kind = CommandKind::kRead;
    c.lba = lba;
    c.nblocks = nblocks;
    c.on_complete = std::move(cb);
    return c;
  }
  static Command Write(Lba lba, std::vector<std::uint64_t> tokens,
                       blocklayer::IoCallback cb) {
    Command c;
    c.kind = CommandKind::kWrite;
    c.lba = lba;
    c.nblocks = static_cast<std::uint32_t>(tokens.size());
    c.tokens = std::move(tokens);
    c.on_complete = std::move(cb);
    return c;
  }
  static Command Trim(Lba lba, std::uint32_t nblocks,
                      blocklayer::IoCallback cb) {
    Command c;
    c.kind = CommandKind::kTrim;
    c.lba = lba;
    c.nblocks = nblocks;
    c.on_complete = std::move(cb);
    return c;
  }
  static Command Flush(blocklayer::IoCallback cb) {
    Command c;
    c.kind = CommandKind::kFlush;
    c.on_complete = std::move(cb);
    return c;
  }
  static Command AtomicGroup(
      std::vector<std::pair<Lba, std::uint64_t>> extents,
      blocklayer::IoCallback cb) {
    Command c;
    c.kind = CommandKind::kAtomicGroup;
    c.group = std::move(extents);
    c.on_complete = std::move(cb);
    return c;
  }
  static Command NamelessWrite(std::uint64_t token,
                               blocklayer::IoCallback cb) {
    Command c;
    c.kind = CommandKind::kNamelessWrite;
    c.tokens = {token};
    c.on_complete = std::move(cb);
    return c;
  }
  static Command Hint(HintKind hint, blocklayer::IoCallback cb = {}) {
    Command c;
    c.kind = CommandKind::kHint;
    c.hint = hint;
    c.on_complete = std::move(cb);
    return c;
  }
};

/// The unified host-facing interface: typed commands plus capability
/// discovery. Every stackable layer in the repo (the SSD device, the
/// block layer, the direct driver, the HDD, simple devices, and
/// core::HybridStore's async class) implements it, so a host program
/// is written once against `Execute`/`Supports` and wired over any
/// stack.
///
/// Contract: `Execute` must complete `cmd.on_complete` exactly once (in
/// simulated time for accepted commands; a command whose kind the layer
/// does not support completes inline with Unimplemented — callers that
/// care should check `Supports` first, which is the point of capability
/// discovery).
class HostInterface {
 public:
  virtual ~HostInterface() = default;

  /// Can this stack execute `kind`? Stacked layers forward the question
  /// to the layer below for kinds they merely pass through.
  virtual bool Supports(CommandKind kind) const {
    switch (kind) {
      case CommandKind::kRead:
      case CommandKind::kWrite:
      case CommandKind::kTrim:
      case CommandKind::kFlush:
        return true;
      default:
        return false;
    }
  }

  /// Executes one typed command.
  virtual void Execute(Command cmd) = 0;

  /// Capability bitmask (bit = static_cast<int>(CommandKind)).
  std::uint32_t CapabilityMask() const {
    std::uint32_t mask = 0;
    for (std::size_t k = 0; k < kNumCommandKinds; ++k) {
      if (Supports(static_cast<CommandKind>(k))) mask |= 1u << k;
    }
    return mask;
  }
};

/// Lowers a basic (block-expressible) command to an IoRequest. Only
/// valid for kRead/kWrite/kTrim/kFlush.
inline blocklayer::IoRequest LowerToIoRequest(Command cmd) {
  blocklayer::IoRequest r;
  switch (cmd.kind) {
    case CommandKind::kRead:
      r.op = blocklayer::IoOp::kRead;
      break;
    case CommandKind::kWrite:
      r.op = blocklayer::IoOp::kWrite;
      break;
    case CommandKind::kTrim:
      r.op = blocklayer::IoOp::kTrim;
      break;
    case CommandKind::kFlush:
      r.op = blocklayer::IoOp::kFlush;
      break;
    default:
      r.op = blocklayer::IoOp::kRead;  // unreachable by contract
      break;
  }
  r.lba = cmd.lba;
  r.nblocks = cmd.nblocks;
  r.tokens = std::move(cmd.tokens);
  r.priority = cmd.priority;
  r.stream = cmd.stream;
  r.span = cmd.span;
  r.on_complete = std::move(cmd.on_complete);
  return r;
}

/// True for the four kinds the legacy block interface can express.
inline bool IsBlockExpressible(CommandKind kind) {
  switch (kind) {
    case CommandKind::kRead:
    case CommandKind::kWrite:
    case CommandKind::kTrim:
    case CommandKind::kFlush:
      return true;
    default:
      return false;
  }
}

}  // namespace postblock::host

#endif  // POSTBLOCK_HOST_COMMAND_H_
