#ifndef POSTBLOCK_VBD_VBD_H_
#define POSTBLOCK_VBD_VBD_H_

#include <cstdint>
#include <string>

#include "common/histogram.h"
#include "common/types.h"

namespace postblock::metrics {
class MetricRegistry;
}  // namespace postblock::metrics

namespace postblock::trace {
class Tracer;
}  // namespace postblock::trace

namespace postblock::vbd {

/// Slot index of a tenant inside one Backend. Slots are reused after
/// destroy (the recreated tenant gets a fresh epoch), so a TenantId is
/// only meaningful together with the epoch its Frontend carries.
using TenantId = std::uint32_t;
inline constexpr TenantId kInvalidTenant = ~0u;

/// Lifecycle of a virtual block device, modeled on the Xen blkif
/// connection states (SNIPPETS.md 1-2): a front-end connects to the
/// back-end, may disconnect and reconnect keeping its data (guest
/// reboot), and is eventually destroyed, returning its namespace.
///
///   kConnected     accepting IO
///   kDraining      no new IO; in-flight IO completing (disconnect or
///                  destroy in progress)
///   kDisconnected  drained, data retained, reconnectable
///   kDestroyed     namespace freed; the slot may be reused
enum class TenantState : std::uint8_t {
  kConnected = 0,
  kDraining,
  kDisconnected,
  kDestroyed,
};

inline const char* TenantStateName(TenantState s) {
  switch (s) {
    case TenantState::kConnected:
      return "connected";
    case TenantState::kDraining:
      return "draining";
    case TenantState::kDisconnected:
      return "disconnected";
    case TenantState::kDestroyed:
      return "destroyed";
  }
  return "?";
}

/// Per-tenant shape: how much of the device the tenant sees, how much
/// it may actually fill, and how its traffic is classified downstream.
struct TenantConfig {
  /// Trace-track / metric name; "" derives "t<slot>".
  std::string name;
  /// Namespace size: the tenant addresses LBAs [0, capacity_blocks).
  /// Physically reserved as one contiguous extent of the lower device.
  std::uint64_t capacity_blocks = 0;
  /// Thin-provisioning budget: distinct LBAs the tenant may have
  /// written at any one time. Writing a never-written LBA past the
  /// quota fails with ResourceExhausted (a typed status, not UB);
  /// trim returns budget. 0 = capacity_blocks (fully provisioned).
  std::uint64_t quota_blocks = 0;
  /// Deficit-round-robin weight at the backend's shared admission
  /// budget (BackendConfig::shared_depth). A weight-w tenant gets w
  /// device slots per DRR round; 0 clamps to 1 (starvation-free).
  std::uint32_t qos_weight = 1;
  /// Default IoRequest::stream for this tenant's IOs (applied when the
  /// submitted request leaves it 0). Nonzero streams pin to an mq
  /// queue pair under BlockLayerConfig::stream_queues — this is how
  /// tenants map onto PR 5's queue pairs and their DRR weights.
  std::uint8_t stream = 0;
  /// Default IoRequest::priority (applied when the request leaves it
  /// 0): latency-sensitive tenants dispatch first under the priority
  /// scheduler.
  std::uint8_t priority = 0;
  /// Register per-tenant registry metrics (vbd.<name>.*) when the
  /// backend has a MetricRegistry attached. Off by default: at
  /// thousands of tenants, per-tenant time series are opt-in.
  bool register_metrics = false;
};

/// Backend-wide knobs. Every default is neutral: a single pass-through
/// tenant spanning the whole lower device produces a schedule
/// byte-identical to submitting at the lower device directly
/// (bench_vbd's neutrality fingerprint, check_perf gate 8).
struct BackendConfig {
  /// Shared in-flight device-slot budget across all tenants,
  /// arbitrated by deficit-round-robin over TenantConfig::qos_weight.
  /// 0 = pass-through admission: every request dispatches immediately
  /// (the neutral default).
  std::uint32_t shared_depth = 0;
  /// Host-side cost of a rejected request (bounds, quota, state):
  /// the rejection completes this long after submit. Nonzero so a
  /// closed loop hammering a rejecting tenant still advances simulated
  /// time.
  SimTime reject_latency_ns = 1 * kMicrosecond;
  /// Latency of a read served entirely from the allocation map (every
  /// addressed block unwritten): thin reads never touch the media.
  SimTime thin_read_latency_ns = 1 * kMicrosecond;
  /// Trim the tenant's extent on the lower device once a destroy has
  /// drained, before the namespace returns to the free list — the FTL
  /// reclaims the capacity instead of garbage-collecting dead data.
  bool trim_on_destroy = true;
  /// Optional cross-layer tracer: each tenant gets its own trace track
  /// (its own Perfetto process group, trace::kPidTenantBase + slot) so
  /// spans group by tenant. Null costs a pointer test.
  trace::Tracer* tracer = nullptr;
  /// Optional registry for backend aggregates (vbd.submitted /
  /// vbd.completed / vbd.rejected) and opt-in per-tenant series.
  metrics::MetricRegistry* metrics = nullptr;
};

/// Per-tenant observables. Lives in the tenant's Frontend, so the
/// numbers survive destroy (a frozen record of the tenant's life).
struct TenantStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;           // completions with !ok status
  std::uint64_t rejected_bounds = 0;  // out-of-namespace LBA
  std::uint64_t rejected_quota = 0;   // thin-provisioning budget hit
  std::uint64_t rejected_state = 0;   // not connected
  std::uint64_t cancelled = 0;        // queued IO dropped by drain
  std::uint64_t blocks_read = 0;
  std::uint64_t blocks_written = 0;
  std::uint64_t thin_reads = 0;       // served from the allocation map
  std::uint64_t zero_filled_blocks = 0;
  Histogram read_latency;   // submit -> completion, ns (incl. p999)
  Histogram write_latency;
};

}  // namespace postblock::vbd

#endif  // POSTBLOCK_VBD_VBD_H_
