#ifndef POSTBLOCK_VBD_BACKEND_H_
#define POSTBLOCK_VBD_BACKEND_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "blocklayer/block_device.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/statusor.h"
#include "metrics/metrics.h"
#include "sim/simulator.h"
#include "trace/tracer.h"
#include "vbd/frontend.h"
#include "vbd/vbd.h"

namespace postblock::vbd {

/// The multiplexer half of the blkif-style split (SNIPPETS.md 1-2): one
/// Backend serves many tenant Frontends over a single lower
/// BlockDevice. Per tenant it owns
///
///   - the namespace: a contiguous extent of the lower LBA space,
///     allocated at create, coalesced back into a free list at destroy
///     (destroy-then-recreate reuses the space); every IO is bounds
///     checked and translated — out-of-namespace access completes with
///     OutOfRange, it can never touch a neighbour;
///   - the quota: a thin-provisioning budget over distinct written
///     LBAs, tracked in a per-tenant allocation bitmap. Exhaustion is
///     a typed ResourceExhausted completion; trim refunds budget.
///     Reads of never-written blocks are zero-filled from the bitmap
///     (fully-unwritten reads never touch the media), so a recreated
///     tenant cannot see a predecessor's data even with trim disabled;
///   - QoS: with shared_depth > 0, requests park in per-tenant FIFOs
///     and a deficit-round-robin arbiter over qos_weights hands out
///     device slots (same DRR semantics as the mq block layer's
///     shared-depth gate, one level up). Tenant stream/priority
///     defaults classify the dispatched IO for the mq queue pairs;
///   - lifecycle: create/destroy/disconnect/reconnect under live
///     traffic. A drain cancels queued IO (typed Unavailable), lets
///     in-flight IO complete to the user, and only then completes the
///     destroy — after an optional whole-extent trim so the FTL
///     reclaims the capacity. All fully deterministic in sim time.
///
/// Neutrality: with shared_depth == 0 a single tenant spanning the
/// whole device adds no simulated cost and no reordering — the lower
/// device sees the exact request sequence it would see directly
/// (gate 8's fingerprint). With no tenants, the Backend is idle state.
class Backend {
 public:
  Backend(sim::Simulator* sim, blocklayer::BlockDevice* lower,
          BackendConfig config = {});
  ~Backend();

  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;

  /// Creates a tenant: allocates its extent, installs a fresh
  /// Frontend (owned by the backend, valid for the backend's life).
  /// Fails with ResourceExhausted when no contiguous extent of
  /// capacity_blocks is free, InvalidArgument on a bad shape.
  StatusOr<Frontend*> CreateTenant(TenantConfig config);

  /// Destroys a tenant under live traffic: queued IO completes with
  /// Unavailable immediately, in-flight IO completes normally, then
  /// the extent is trimmed (if configured) and returned to the free
  /// list. `on_destroyed` fires exactly once when the teardown is
  /// fully durable; the tenant's Frontend stays readable but stale.
  Status DestroyTenant(TenantId id,
                       blocklayer::IoCallback on_destroyed = {});

  /// Disconnects a tenant (guest detach): queued IO is cancelled,
  /// in-flight IO drains, data and namespace are retained.
  /// `on_drained` fires when the tenant reaches kDisconnected.
  Status Disconnect(TenantId id, blocklayer::IoCallback on_drained = {});

  /// Reconnects a kDisconnected tenant; its Frontend resumes working.
  Status Connect(TenantId id);

  // --- Introspection ------------------------------------------------

  /// Tenant slots currently not destroyed.
  std::size_t num_tenants() const;
  TenantState state(TenantId id) const;
  /// Lower-device LBA where the tenant's extent starts (tests).
  std::uint64_t extent_base(TenantId id) const;
  std::uint32_t tenant_inflight(TenantId id) const;
  std::size_t tenant_pending(TenantId id) const;
  std::uint64_t quota_used(TenantId id) const;
  /// Completions whose tenant epoch no longer matched (should stay 0:
  /// the drain protocol retires every in-flight IO before slot reuse).
  std::uint64_t stale_completions() const { return stale_completions_; }
  /// Pooled per-IO state accounting (equal at quiescence or state
  /// leaked), mirroring BlockLayer::io_states_*.
  std::size_t io_states_allocated() const { return io_pool_.size(); }
  std::size_t io_states_free() const { return io_free_.size(); }
  std::uint32_t shared_outstanding() const { return shared_outstanding_; }
  const Counters& counters() const { return counters_; }
  blocklayer::BlockDevice* lower() const { return lower_; }
  const BackendConfig& config() const { return config_; }

 private:
  friend class Frontend;

  /// Per-IO state, pooled. The lower-device completion wrapper
  /// captures only {Backend*, VbdIo*} — inline in IoCallback's buffer,
  /// so the multiplexer adds no allocation to the forwarding hot path.
  struct VbdIo {
    TenantId tenant = kInvalidTenant;
    std::uint64_t epoch = 0;
    Frontend* fe = nullptr;
    blocklayer::IoOp op = blocklayer::IoOp::kRead;
    std::uint32_t nblocks = 1;
    std::uint64_t zero_mask = 0;  // read blocks to zero-fill (bit/block)
    SimTime start = 0;            // tenant submit time
    SimTime enqueued = 0;         // admission-queue entry (QoS only)
    SimTime dispatched = 0;       // handed to the lower device
    bool shared_slot = false;     // holds one shared_depth slot
    trace::SpanId span = 0;
    bool root = false;          // this layer minted the span
    std::uint32_t track = 0;    // tenant trace track at submit time
    blocklayer::IoCallback user_cb;
    blocklayer::IoRequest req;  // staged while admission-parked
  };

  struct Tenant {
    TenantConfig config;
    TenantState state = TenantState::kDestroyed;
    bool destroying = false;
    bool ever_written = false;
    std::uint64_t epoch = 0;
    std::uint64_t base = 0;   // extent start on the lower device
    std::uint64_t quota = 0;  // resolved (0-means-capacity applied)
    std::uint64_t used = 0;   // distinct written blocks
    std::vector<std::uint64_t> written;  // allocation bitmap
    std::uint32_t inflight = 0;
    std::deque<VbdIo*> pending;  // admission-parked (QoS only)
    Frontend* fe = nullptr;
    std::uint32_t track = 0;  // tenant trace track (tracer attached)
    metrics::Id m_read_lat = metrics::kInvalidId;
    metrics::Id m_write_lat = metrics::kInvalidId;
    blocklayer::IoCallback on_drained;
  };

  void Submit(Frontend* fe, blocklayer::IoRequest request);
  /// Completes a fully-unwritten read from the allocation map alone.
  void ServeThinRead(Frontend* fe, Tenant& t, blocklayer::IoRequest request);
  /// Epoch-aware views for a Frontend handle (stale handle -> frozen).
  TenantState StateFor(const Frontend& fe) const;
  std::uint64_t QuotaUsedFor(const Frontend& fe) const;

  VbdIo* AcquireIo();
  void ReleaseIo(VbdIo* io);

  /// Completes `cb` with `status` after the configured rejection
  /// latency (typed failure, simulated host-side cost).
  void Reject(blocklayer::IoCallback cb, Status status);
  void OnLowerComplete(VbdIo* io, const blocklayer::IoResult& result);
  void DispatchIo(VbdIo* io);
  void DispatchShared();
  void CancelPending(Tenant& tenant);
  void BeginDrain(Tenant& tenant);
  void FinishDrain(TenantId id);
  void FinishDestroy(TenantId id);

  // Extent free-list (sorted by base, adjacent ranges coalesced).
  StatusOr<std::uint64_t> AllocateExtent(std::uint64_t blocks);
  void ReleaseExtent(std::uint64_t base, std::uint64_t blocks);

  // Allocation-bitmap helpers over tenant-relative [lba, lba+n).
  static std::uint64_t CountUnwritten(const Tenant& t, Lba lba,
                                      std::uint32_t n);
  static void MarkWritten(Tenant& t, Lba lba, std::uint32_t n);
  static std::uint64_t ClearWritten(Tenant& t, Lba lba, std::uint32_t n);

  std::uint32_t WeightOf(const Tenant& t) const {
    return t.config.qos_weight == 0 ? 1 : t.config.qos_weight;
  }
  bool Traced() const {
    return config_.tracer != nullptr && config_.tracer->enabled();
  }

  sim::Simulator* sim_;
  blocklayer::BlockDevice* lower_;
  BackendConfig config_;

  std::vector<Tenant> tenants_;
  std::vector<TenantId> free_slots_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> free_extents_;
  std::uint64_t epoch_counter_ = 0;
  /// Every Frontend ever created — handles stay valid after destroy.
  std::vector<std::unique_ptr<Frontend>> frontends_;

  // Pooled per-IO state.
  std::deque<VbdIo> io_pool_;
  std::vector<VbdIo*> io_free_;

  // Shared-depth DRR admission state.
  std::vector<std::uint32_t> drr_credits_;
  std::uint32_t drr_pos_ = 0;
  std::uint32_t shared_outstanding_ = 0;

  std::uint64_t stale_completions_ = 0;
  Counters counters_;
  metrics::Id m_submitted_ = metrics::kInvalidId;
  metrics::Id m_completed_ = metrics::kInvalidId;
  metrics::Id m_rejected_ = metrics::kInvalidId;
};

}  // namespace postblock::vbd

#endif  // POSTBLOCK_VBD_BACKEND_H_
