#ifndef POSTBLOCK_VBD_FRONTEND_H_
#define POSTBLOCK_VBD_FRONTEND_H_

#include <cstdint>
#include <string>

#include "blocklayer/block_device.h"
#include "common/stats.h"
#include "vbd/vbd.h"

namespace postblock::vbd {

class Backend;

/// What a tenant holds: its own virtual block device. A Frontend is a
/// full blocklayer::BlockDevice over the tenant's private LBA namespace
/// [0, capacity_blocks), so every existing driver in the repo — the
/// workload patterns, RunClosedLoop, the DB storage manager — runs over
/// a tenant unchanged. Submission crosses to the Backend, which
/// translates, enforces bounds and quota, applies QoS admission and
/// multiplexes onto the one lower device.
///
/// Frontends are owned by their Backend and stay valid after the tenant
/// is destroyed: a stale handle's submissions complete with Unavailable
/// (the epoch check), and its stats/counters stay readable as a frozen
/// record — a recreated tenant in the same slot gets a fresh Frontend.
class Frontend : public blocklayer::BlockDevice {
 public:
  std::uint64_t num_blocks() const override { return capacity_; }
  std::uint32_t block_bytes() const override { return block_bytes_; }
  void Submit(blocklayer::IoRequest request) override;
  const Counters& counters() const override { return counters_; }

  TenantId id() const { return id_; }
  std::uint64_t epoch() const { return epoch_; }
  const std::string& name() const { return name_; }
  /// Current lifecycle state; kDestroyed once the handle is stale.
  TenantState state() const;

  const TenantStats& stats() const { return stats_; }
  /// Distinct written (quota-charged) blocks right now.
  std::uint64_t quota_used() const;
  std::uint64_t quota_blocks() const { return quota_; }

 private:
  friend class Backend;
  Frontend(Backend* backend, TenantId id, std::uint64_t epoch,
           std::string name, std::uint64_t capacity,
           std::uint64_t quota, std::uint32_t block_bytes)
      : backend_(backend),
        id_(id),
        epoch_(epoch),
        name_(std::move(name)),
        capacity_(capacity),
        quota_(quota),
        block_bytes_(block_bytes) {}

  Backend* backend_;
  TenantId id_;
  std::uint64_t epoch_;
  std::string name_;
  std::uint64_t capacity_;
  std::uint64_t quota_;
  std::uint32_t block_bytes_;
  TenantStats stats_;
  Counters counters_;
};

}  // namespace postblock::vbd

#endif  // POSTBLOCK_VBD_FRONTEND_H_
