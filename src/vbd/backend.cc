#include "vbd/backend.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>
#include <vector>

namespace postblock::vbd {

using blocklayer::IoCallback;
using blocklayer::IoOp;
using blocklayer::IoRequest;
using blocklayer::IoResult;

Backend::Backend(sim::Simulator* sim, blocklayer::BlockDevice* lower,
                 BackendConfig config)
    : sim_(sim), lower_(lower), config_(config) {
  assert(lower_ != nullptr);
  free_extents_.push_back({0, lower_->num_blocks()});
  if (config_.metrics != nullptr && !config_.metrics->Has("vbd.submitted")) {
    m_submitted_ = config_.metrics->AddCounter("vbd.submitted");
    m_completed_ = config_.metrics->AddCounter("vbd.completed");
    m_rejected_ = config_.metrics->AddCounter("vbd.rejected");
  }
}

Backend::~Backend() = default;

// --- Tenant lifecycle ------------------------------------------------

StatusOr<Frontend*> Backend::CreateTenant(TenantConfig config) {
  if (config.capacity_blocks == 0) {
    return Status::InvalidArgument("capacity_blocks must be > 0");
  }
  if (config.capacity_blocks > 0xffffffffull) {
    return Status::InvalidArgument(
        "capacity_blocks must fit 32 bits (trim granularity)");
  }
  const std::uint64_t quota =
      config.quota_blocks == 0 ? config.capacity_blocks : config.quota_blocks;
  if (quota > config.capacity_blocks) {
    return Status::InvalidArgument("quota_blocks exceeds capacity_blocks");
  }
  StatusOr<std::uint64_t> base = AllocateExtent(config.capacity_blocks);
  if (!base.ok()) return base.status();

  TenantId id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
  } else {
    id = static_cast<TenantId>(tenants_.size());
    tenants_.emplace_back();
    drr_credits_.push_back(0);
  }
  Tenant& t = tenants_[id];
  t.config = std::move(config);
  if (t.config.name.empty()) t.config.name = "t" + std::to_string(id);
  t.state = TenantState::kConnected;
  t.destroying = false;
  t.ever_written = false;
  t.epoch = ++epoch_counter_;
  t.base = base.value();
  t.quota = quota;
  t.used = 0;
  t.written.assign((t.config.capacity_blocks + 63) / 64, 0);
  t.inflight = 0;
  t.pending.clear();
  t.on_drained = nullptr;
  drr_credits_[id] = WeightOf(t);
  t.track = 0;
  if (config_.tracer != nullptr) {
    t.track = config_.tracer->RegisterTrack(trace::kPidTenantBase + id,
                                            t.config.name);
  }
  t.m_read_lat = metrics::kInvalidId;
  t.m_write_lat = metrics::kInvalidId;
  if (t.config.register_metrics && config_.metrics != nullptr) {
    // Skip names already taken (a recreated tenant reusing a name): the
    // registry requires unique registration, and the Sampler's column
    // layout is frozen at Start() anyway.
    const std::string prefix = "vbd." + t.config.name;
    if (!config_.metrics->Has(prefix + ".read_lat_ns")) {
      t.m_read_lat = config_.metrics->AddHistogram(prefix + ".read_lat_ns");
    }
    if (!config_.metrics->Has(prefix + ".write_lat_ns")) {
      t.m_write_lat = config_.metrics->AddHistogram(prefix + ".write_lat_ns");
    }
  }
  frontends_.push_back(std::unique_ptr<Frontend>(
      new Frontend(this, id, t.epoch, t.config.name, t.config.capacity_blocks,
                   quota, lower_->block_bytes())));
  t.fe = frontends_.back().get();
  counters_.Increment("tenants_created");
  return t.fe;
}

Status Backend::DestroyTenant(TenantId id, IoCallback on_destroyed) {
  if (id >= tenants_.size() ||
      tenants_[id].state == TenantState::kDestroyed) {
    return Status::NotFound("no such tenant");
  }
  Tenant& t = tenants_[id];
  if (t.state == TenantState::kDraining) {
    return Status::FailedPrecondition("tenant already draining");
  }
  t.destroying = true;
  t.on_drained = std::move(on_destroyed);
  t.state = TenantState::kDraining;
  CancelPending(t);
  if (t.inflight == 0) FinishDrain(id);
  return Status::Ok();
}

Status Backend::Disconnect(TenantId id, IoCallback on_drained) {
  if (id >= tenants_.size() ||
      tenants_[id].state == TenantState::kDestroyed) {
    return Status::NotFound("no such tenant");
  }
  Tenant& t = tenants_[id];
  if (t.state != TenantState::kConnected) {
    return Status::FailedPrecondition("tenant not connected");
  }
  t.destroying = false;
  t.on_drained = std::move(on_drained);
  t.state = TenantState::kDraining;
  CancelPending(t);
  if (t.inflight == 0) FinishDrain(id);
  return Status::Ok();
}

Status Backend::Connect(TenantId id) {
  if (id >= tenants_.size() ||
      tenants_[id].state == TenantState::kDestroyed) {
    return Status::NotFound("no such tenant");
  }
  Tenant& t = tenants_[id];
  if (t.state != TenantState::kDisconnected) {
    return Status::FailedPrecondition("tenant not disconnected");
  }
  t.state = TenantState::kConnected;
  counters_.Increment("tenants_reconnected");
  return Status::Ok();
}

void Backend::CancelPending(Tenant& tenant) {
  std::deque<VbdIo*> pending;
  pending.swap(tenant.pending);
  for (VbdIo* io : pending) {
    Frontend* fe = io->fe;
    ++fe->stats_.cancelled;
    counters_.Increment("cancelled");
    IoCallback cb = std::move(io->user_cb);
    ReleaseIo(io);
    if (cb) {
      cb(IoResult{
          Status::Unavailable("tenant draining: queued IO cancelled"), {}});
    }
  }
}

void Backend::FinishDrain(TenantId id) {
  Tenant& t = tenants_[id];
  assert(t.inflight == 0 && t.pending.empty());
  if (!t.destroying) {
    t.state = TenantState::kDisconnected;
    counters_.Increment("tenants_disconnected");
    IoCallback cb = std::move(t.on_drained);
    t.on_drained = nullptr;
    if (cb) cb(IoResult{Status::Ok(), {}});
    return;
  }
  if (config_.trim_on_destroy && t.ever_written) {
    // Unmap the whole extent before the namespace returns to the free
    // list: the FTL reclaims the dead data, and a later tenant of the
    // same extent starts from unmapped media.
    IoRequest trim;
    trim.op = IoOp::kTrim;
    trim.lba = t.base;
    trim.nblocks = static_cast<std::uint32_t>(t.config.capacity_blocks);
    trim.on_complete =
        IoCallback([this, id](const IoResult&) { FinishDestroy(id); });
    counters_.Increment("destroy_trims");
    lower_->Submit(std::move(trim));
    return;
  }
  FinishDestroy(id);
}

void Backend::FinishDestroy(TenantId id) {
  Tenant& t = tenants_[id];
  ReleaseExtent(t.base, t.config.capacity_blocks);
  t.state = TenantState::kDestroyed;
  t.written.clear();
  t.written.shrink_to_fit();
  t.used = 0;
  free_slots_.push_back(id);
  counters_.Increment("tenants_destroyed");
  IoCallback cb = std::move(t.on_drained);
  t.on_drained = nullptr;
  if (cb) cb(IoResult{Status::Ok(), {}});
}

// --- Submission path -------------------------------------------------

void Backend::Submit(Frontend* fe, IoRequest request) {
  ++fe->stats_.submitted;
  fe->counters_.Increment("submitted");
  counters_.Increment("submitted");
  if (m_submitted_ != metrics::kInvalidId) {
    config_.metrics->Increment(m_submitted_);
  }

  Tenant* t = fe->id_ < tenants_.size() ? &tenants_[fe->id_] : nullptr;
  if (t == nullptr || t->epoch != fe->epoch_ ||
      t->state != TenantState::kConnected) {
    ++fe->stats_.rejected_state;
    Reject(std::move(request.on_complete),
           Status::Unavailable("tenant not connected"));
    return;
  }

  const IoOp op = request.op;
  if (op != IoOp::kFlush) {
    if (request.nblocks == 0 || request.lba >= fe->capacity_ ||
        request.nblocks > fe->capacity_ - request.lba) {
      ++fe->stats_.rejected_bounds;
      Reject(std::move(request.on_complete),
             Status::OutOfRange("IO outside tenant namespace"));
      return;
    }
  }

  std::uint64_t zero_mask = 0;
  if (op == IoOp::kWrite) {
    const std::uint64_t fresh =
        CountUnwritten(*t, request.lba, request.nblocks);
    if (fresh > t->quota - t->used) {
      ++fe->stats_.rejected_quota;
      Reject(std::move(request.on_complete),
             Status::ResourceExhausted("tenant quota exhausted"));
      return;
    }
    MarkWritten(*t, request.lba, request.nblocks);
    t->used += fresh;
    t->ever_written = true;
  } else if (op == IoOp::kTrim) {
    t->used -= ClearWritten(*t, request.lba, request.nblocks);
  } else if (op == IoOp::kRead) {
    if (request.nblocks <= 64) {
      for (std::uint32_t b = 0; b < request.nblocks; ++b) {
        const Lba a = request.lba + b;
        if ((t->written[a >> 6] >> (a & 63) & 1) == 0) {
          zero_mask |= 1ull << b;
        }
      }
      const std::uint64_t full = request.nblocks == 64
                                     ? ~0ull
                                     : (1ull << request.nblocks) - 1;
      if (zero_mask == full) {
        ServeThinRead(fe, *t, std::move(request));
        return;
      }
    } else if (CountUnwritten(*t, request.lba, request.nblocks) != 0) {
      // The zero-fill mask covers 64 blocks; longer reads are only
      // forwarded when fully written (anything else would risk leaking
      // a predecessor's media contents).
      ++fe->stats_.rejected_bounds;
      Reject(std::move(request.on_complete),
             Status::InvalidArgument(
                 "read of partially-written span longer than 64 blocks"));
      return;
    }
  }

  VbdIo* io = AcquireIo();
  io->tenant = fe->id_;
  io->epoch = fe->epoch_;
  io->fe = fe;
  io->op = op;
  io->nblocks = request.nblocks;
  io->zero_mask = zero_mask;
  io->start = sim_->Now();
  io->enqueued = 0;
  io->dispatched = 0;
  io->shared_slot = false;
  io->track = t->track;
  io->user_cb = std::move(request.on_complete);

  if (op != IoOp::kFlush) request.lba += t->base;
  if (request.stream == 0) request.stream = t->config.stream;
  if (request.priority == 0) request.priority = t->config.priority;
  io->root = false;
  if (Traced() && request.span == 0) {
    request.span = config_.tracer->NewSpan();
    io->root = true;
  }
  io->span = request.span;
  request.on_complete =
      IoCallback([this, io](const IoResult& r) { OnLowerComplete(io, r); });
  io->req = std::move(request);

  if (config_.shared_depth == 0) {
    DispatchIo(io);
    return;
  }
  io->enqueued = sim_->Now();
  io->req.enqueued_at = io->enqueued;
  t->pending.push_back(io);
  DispatchShared();
}

void Backend::ServeThinRead(Frontend* fe, Tenant& t, IoRequest request) {
  const std::uint32_t nblocks = request.nblocks;
  const SimTime start = sim_->Now();
  trace::SpanId span = request.span;
  if (Traced() && span == 0) span = config_.tracer->NewSpan();
  sim_->Schedule(
      config_.thin_read_latency_ns,
      [this, fe, nblocks, start, span, track = t.track,
       mrl = t.m_read_lat, lba = request.lba,
       cb = std::move(request.on_complete)]() {
        const SimTime now = sim_->Now();
        ++fe->stats_.completed;
        ++fe->stats_.thin_reads;
        fe->stats_.blocks_read += nblocks;
        fe->stats_.zero_filled_blocks += nblocks;
        fe->stats_.read_latency.Record(now - start);
        fe->counters_.Increment("completed");
        counters_.Increment("completed");
        counters_.Increment("thin_reads");
        if (m_completed_ != metrics::kInvalidId) {
          config_.metrics->Increment(m_completed_);
        }
        if (mrl != metrics::kInvalidId) {
          config_.metrics->Record(mrl, now - start);
        }
        if (Traced() && span != 0) {
          config_.tracer->Record(trace::Stage::kIo, trace::Origin::kHostRead,
                                 span, 0, track, start, now, lba);
        }
        if (cb) {
          cb(IoResult{Status::Ok(),
                      std::vector<std::uint64_t>(nblocks, 0)});
        }
      });
}

void Backend::Reject(IoCallback cb, Status status) {
  counters_.Increment("rejected");
  if (m_rejected_ != metrics::kInvalidId) {
    config_.metrics->Increment(m_rejected_);
  }
  if (!cb) return;
  sim_->Schedule(config_.reject_latency_ns,
                 [cb = std::move(cb), status = std::move(status)]() {
                   cb(IoResult{status, {}});
                 });
}

void Backend::DispatchIo(VbdIo* io) {
  Tenant& t = tenants_[io->tenant];
  ++t.inflight;
  io->dispatched = sim_->Now();
  lower_->Submit(std::move(io->req));
}

void Backend::DispatchShared() {
  // Same deficit-round-robin semantics as the mq block layer's
  // shared-depth gate (BlockLayer::DispatchShared), one level up:
  // tenants spend one credit per dispatched IO; when every backlogged
  // tenant is out of credit, all credits replenish to the weights.
  while (shared_outstanding_ < config_.shared_depth) {
    const std::uint32_t n = static_cast<std::uint32_t>(tenants_.size());
    if (n == 0) return;
    bool dispatched = false;
    bool any_work = false;
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t q = (drr_pos_ + i) % n;
      Tenant& t = tenants_[q];
      if (t.pending.empty()) continue;
      any_work = true;
      if (drr_credits_[q] == 0) continue;
      --drr_credits_[q];
      VbdIo* io = t.pending.front();
      t.pending.pop_front();
      io->shared_slot = true;
      ++shared_outstanding_;
      drr_pos_ = q;
      DispatchIo(io);
      dispatched = true;
      break;
    }
    if (!any_work) return;
    if (!dispatched) {
      for (std::uint32_t q = 0; q < n; ++q) {
        drr_credits_[q] = WeightOf(tenants_[q]);
      }
      drr_pos_ = (drr_pos_ + 1) % n;
    }
  }
}

void Backend::OnLowerComplete(VbdIo* io, const IoResult& result) {
  const SimTime now = sim_->Now();
  Frontend* fe = io->fe;
  const TenantId tid = io->tenant;
  const std::uint64_t epoch = io->epoch;
  Tenant* t = &tenants_[tid];
  const bool live = t->epoch == epoch;
  if (!live) {
    ++stale_completions_;
    t = nullptr;
  }

  ++fe->stats_.completed;
  fe->counters_.Increment("completed");
  counters_.Increment("completed");
  if (m_completed_ != metrics::kInvalidId) {
    config_.metrics->Increment(m_completed_);
  }
  if (!result.status.ok()) {
    ++fe->stats_.errors;
    counters_.Increment("errors");
  }

  const SimTime lat = now - io->start;
  if (io->op == IoOp::kRead) {
    fe->stats_.blocks_read += io->nblocks;
    fe->stats_.read_latency.Record(lat);
    if (live && t->m_read_lat != metrics::kInvalidId) {
      config_.metrics->Record(t->m_read_lat, lat);
    }
  } else {
    if (io->op == IoOp::kWrite) fe->stats_.blocks_written += io->nblocks;
    fe->stats_.write_latency.Record(lat);
    if (live && t->m_write_lat != metrics::kInvalidId) {
      config_.metrics->Record(t->m_write_lat, lat);
    }
  }

  // Zero-fill never-written blocks of a partially-written read: the
  // device's media contents for those LBAs belong to no one (or to a
  // destroyed predecessor) and must not surface.
  const IoResult* out = &result;
  IoResult masked;
  if (io->op == IoOp::kRead && io->zero_mask != 0 && result.status.ok()) {
    masked.status = result.status;
    masked.tokens = result.tokens;
    if (masked.tokens.size() < io->nblocks) {
      masked.tokens.resize(io->nblocks, 0);
    }
    std::uint64_t filled = 0;
    for (std::uint32_t b = 0; b < io->nblocks && b < 64; ++b) {
      if (io->zero_mask >> b & 1) {
        masked.tokens[b] = 0;
        ++filled;
      }
    }
    fe->stats_.zero_filled_blocks += filled;
    out = &masked;
  }

  if (Traced() && io->span != 0) {
    const trace::Origin origin = blocklayer::OriginOf(io->op);
    if (io->enqueued != 0 && io->dispatched > io->enqueued) {
      config_.tracer->Record(trace::Stage::kQueueWait, origin, io->span, 0,
                             io->track, io->enqueued, io->dispatched,
                             io->nblocks);
    }
    if (io->root) {
      config_.tracer->Record(trace::Stage::kIo, origin, io->span, 0,
                             io->track, io->start, now, io->nblocks);
    }
  }

  if (io->shared_slot) --shared_outstanding_;
  if (live) --t->inflight;
  IoCallback cb = std::move(io->user_cb);
  ReleaseIo(io);
  if (cb) cb(*out);

  // The user callback may have created/destroyed tenants (reallocating
  // tenants_) — re-derive the slot before the drain check.
  if (tid < tenants_.size()) {
    Tenant& t2 = tenants_[tid];
    if (t2.epoch == epoch && t2.state == TenantState::kDraining &&
        t2.inflight == 0 && t2.pending.empty()) {
      FinishDrain(tid);
    }
  }
  if (config_.shared_depth != 0) DispatchShared();
}

// --- Pooled IO state -------------------------------------------------

Backend::VbdIo* Backend::AcquireIo() {
  if (io_free_.empty()) {
    io_pool_.emplace_back();
    io_free_.push_back(&io_pool_.back());
  }
  VbdIo* io = io_free_.back();
  io_free_.pop_back();
  return io;
}

void Backend::ReleaseIo(VbdIo* io) {
  io->user_cb = nullptr;
  io->req = IoRequest{};
  io->zero_mask = 0;
  io_free_.push_back(io);
}

// --- Extent allocator ------------------------------------------------

StatusOr<std::uint64_t> Backend::AllocateExtent(std::uint64_t blocks) {
  for (auto it = free_extents_.begin(); it != free_extents_.end(); ++it) {
    if (it->second >= blocks) {
      const std::uint64_t base = it->first;
      it->first += blocks;
      it->second -= blocks;
      if (it->second == 0) free_extents_.erase(it);
      return base;
    }
  }
  return Status::ResourceExhausted(
      "no contiguous extent of " + std::to_string(blocks) + " blocks free");
}

void Backend::ReleaseExtent(std::uint64_t base, std::uint64_t blocks) {
  auto it = std::lower_bound(
      free_extents_.begin(), free_extents_.end(), base,
      [](const std::pair<std::uint64_t, std::uint64_t>& e, std::uint64_t b) {
        return e.first < b;
      });
  it = free_extents_.insert(it, {base, blocks});
  const auto next = it + 1;
  if (next != free_extents_.end() && it->first + it->second == next->first) {
    it->second += next->second;
    free_extents_.erase(next);
  }
  if (it != free_extents_.begin()) {
    const auto prev = it - 1;
    if (prev->first + prev->second == it->first) {
      prev->second += it->second;
      free_extents_.erase(it);
    }
  }
}

// --- Allocation bitmap -----------------------------------------------

std::uint64_t Backend::CountUnwritten(const Tenant& t, Lba lba,
                                      std::uint32_t n) {
  std::uint64_t fresh = 0;
  for (std::uint32_t b = 0; b < n; ++b) {
    const Lba a = lba + b;
    fresh += (t.written[a >> 6] >> (a & 63) & 1) == 0 ? 1 : 0;
  }
  return fresh;
}

void Backend::MarkWritten(Tenant& t, Lba lba, std::uint32_t n) {
  for (std::uint32_t b = 0; b < n; ++b) {
    const Lba a = lba + b;
    t.written[a >> 6] |= 1ull << (a & 63);
  }
}

std::uint64_t Backend::ClearWritten(Tenant& t, Lba lba, std::uint32_t n) {
  std::uint64_t freed = 0;
  for (std::uint32_t b = 0; b < n; ++b) {
    const Lba a = lba + b;
    const std::uint64_t bit = 1ull << (a & 63);
    freed += (t.written[a >> 6] & bit) != 0 ? 1 : 0;
    t.written[a >> 6] &= ~bit;
  }
  return freed;
}

// --- Introspection ---------------------------------------------------

std::size_t Backend::num_tenants() const {
  std::size_t n = 0;
  for (const Tenant& t : tenants_) {
    if (t.state != TenantState::kDestroyed) ++n;
  }
  return n;
}

TenantState Backend::state(TenantId id) const {
  return id < tenants_.size() ? tenants_[id].state : TenantState::kDestroyed;
}

std::uint64_t Backend::extent_base(TenantId id) const {
  return id < tenants_.size() ? tenants_[id].base : 0;
}

std::uint32_t Backend::tenant_inflight(TenantId id) const {
  return id < tenants_.size() ? tenants_[id].inflight : 0;
}

std::size_t Backend::tenant_pending(TenantId id) const {
  return id < tenants_.size() ? tenants_[id].pending.size() : 0;
}

std::uint64_t Backend::quota_used(TenantId id) const {
  return id < tenants_.size() ? tenants_[id].used : 0;
}

TenantState Backend::StateFor(const Frontend& fe) const {
  if (fe.id_ >= tenants_.size() || tenants_[fe.id_].epoch != fe.epoch_) {
    return TenantState::kDestroyed;
  }
  return tenants_[fe.id_].state;
}

std::uint64_t Backend::QuotaUsedFor(const Frontend& fe) const {
  if (fe.id_ >= tenants_.size() || tenants_[fe.id_].epoch != fe.epoch_) {
    return 0;
  }
  return tenants_[fe.id_].used;
}

}  // namespace postblock::vbd
