#include "vbd/frontend.h"

#include <utility>

#include "vbd/backend.h"

namespace postblock::vbd {

void Frontend::Submit(blocklayer::IoRequest request) {
  backend_->Submit(this, std::move(request));
}

TenantState Frontend::state() const { return backend_->StateFor(*this); }

std::uint64_t Frontend::quota_used() const {
  return backend_->QuotaUsedFor(*this);
}

}  // namespace postblock::vbd
