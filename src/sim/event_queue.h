#ifndef POSTBLOCK_SIM_EVENT_QUEUE_H_
#define POSTBLOCK_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "common/types.h"
#include "sim/inplace_callback.h"

namespace postblock::sim {

/// A time-ordered queue of callbacks. Ties (equal timestamps) fire in
/// insertion order, which makes whole-simulation runs deterministic.
///
/// Implemented as a hierarchical timing wheel: kLevels levels of kSlots
/// slots each, 1 ns tick at level 0, each level kSlots times coarser
/// than the one below. Push and Pop are O(1) amortized (an event
/// cascades down at most kLevels-1 times over its lifetime) versus
/// O(log n) for a binary heap, and slot vectors retain their capacity,
/// so the steady state allocates nothing per event. Events beyond the
/// wheel horizon (~69 simulated seconds ahead) overflow into a sorted
/// map and are fed back into the wheel as time advances.
///
/// Contract: timestamps must not go backwards — Push(when) with `when`
/// earlier than the wheel position is clamped to it (the same clamp
/// Simulator applies against Now()). The wheel position advances to a
/// timestamp only when NextTime() commits to it or HasEventAtOrBefore()
/// clears a bound at or past it, so a deadline-bounded caller
/// (Simulator::RunUntil) can keep scheduling between its deadline and a
/// far-future pending event without hitting the clamp. The pop order is
/// exactly (when, push order), bit-identical to a binary heap keyed on
/// (when, seq); tests/event_queue_determinism_test.cc holds the two
/// implementations to that.
class EventQueue {
 public:
  using Callback = InplaceCallback;

  static constexpr int kSlotBits = 6;
  static constexpr std::uint64_t kSlots = 1ull << kSlotBits;
  static constexpr std::uint64_t kSlotMask = kSlots - 1;
  static constexpr int kLevels = 6;

  EventQueue();

  /// Enqueues `f` at `when` (clamped to the wheel position, i.e. never
  /// earlier than the last popped timestamp).
  /// Templated so the callback is constructed directly inside the slot
  /// entry — no intermediate InplaceCallback moves on the push path.
  template <typename F>
  void Push(SimTime when, F&& f) {
    if (when < cur_) when = cur_;  // same clamp Simulator applies vs Now()
    Place(Entry{when, next_seq_++, std::forward<F>(f)});
    ++size_;
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Timestamp of the earliest pending event. Requires !empty().
  /// Advances internal wheel cursors (cascading coarse slots down), so
  /// it is not const; the observable pop sequence is unaffected.
  /// Commits the wheel position to the returned timestamp: a subsequent
  /// Push below it clamps up to it. Callers that only want to know
  /// whether anything is due by a deadline must use HasEventAtOrBefore.
  SimTime NextTime();

  /// True iff the earliest pending event's timestamp is <= `bound`
  /// (false on an empty queue). Unlike NextTime(), never advances the
  /// wheel position past `bound`, so after a false return every
  /// Push(when) with `when` >= `bound` keeps its exact timestamp even
  /// if it precedes all pending events — the peek Simulator::RunUntil
  /// needs so work scheduled after the deadline is not deferred to (and
  /// reordered after) a stale far-future event.
  bool HasEventAtOrBefore(SimTime bound);

  /// Removes and returns the earliest event's callback. Requires !empty().
  Callback Pop();

  /// Timestamp of the earliest pending event, computed without moving
  /// the wheel position (a pure read — unlike NextTime(), a later
  /// Push(when) below the returned value is NOT clamped to it). The
  /// sharded engine's rendezvous uses this to pick the next window
  /// start across shards without committing any shard's wheel.
  /// Requires !empty(). Cost: one scan of the finest occupied slot.
  SimTime MinPendingTime() const;

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;  // insertion order, breaks timestamp ties
    Callback cb;
  };

  /// Bits above level L's slot index: equal for cur_ and `t` iff `t`
  /// belongs in level <= L of the current wheel position.
  static constexpr std::uint64_t HighBits(SimTime t, int level) {
    return t >> (kSlotBits * (level + 1));
  }

  void Place(Entry e);
  void CascadeSlot(int level, unsigned idx);
  void PullOverflowBlock();
  void EnsureDrainSlotSorted(std::vector<Entry>& slot);
  bool AdvanceWithin(SimTime bound, SimTime* when);

  std::vector<Entry> slots_[kLevels][kSlots];
  std::uint64_t occupied_[kLevels] = {};  // bitmap of nonempty slots
  /// Far-future events, keyed by timestamp; vectors hold push order.
  std::map<SimTime, std::vector<Entry>> overflow_;

  SimTime cur_ = 0;           // wheel position (<= earliest pending when)
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t drain_pos_ = 0;  // next entry in the level-0 slot at cur_
  SimTime sorted_slot_time_ = ~SimTime{0};  // slot already seq-sorted
  /// Level-0 block (cur_ >> kSlotBits) whose covering slots have been
  /// cascaded. Place() never targets a covering slot of the current
  /// position, so the cascade scan only needs to rerun when the wheel
  /// enters a new block — not on every NextTime() call.
  std::uint64_t cascaded_block_ = ~std::uint64_t{0};
};

}  // namespace postblock::sim

#endif  // POSTBLOCK_SIM_EVENT_QUEUE_H_
