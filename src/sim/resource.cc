#include "sim/resource.h"

#include <cassert>
#include <utility>

namespace postblock::sim {

void Resource::WaiterRing::push_back(Waiter w) {
  if (count_ == buf_.size()) Grow();
  buf_[(head_ + count_) & (buf_.size() - 1)] = std::move(w);
  ++count_;
}

Resource::Waiter Resource::WaiterRing::pop_front() {
  assert(count_ > 0);
  Waiter w = std::move(buf_[head_]);
  head_ = (head_ + 1) & (buf_.size() - 1);
  --count_;
  return w;
}

void Resource::WaiterRing::Grow() {
  const std::size_t new_cap = buf_.empty() ? 8 : buf_.size() * 2;
  std::vector<Waiter> next(new_cap);
  for (std::size_t i = 0; i < count_; ++i) {
    next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
  }
  buf_ = std::move(next);
  head_ = 0;
}

Resource::Resource(Simulator* sim, std::string name, int capacity)
    : sim_(sim), name_(std::move(name)), capacity_(capacity) {
  assert(capacity_ >= 1);
}

Resource::~Resource() = default;

void Resource::AccrueBusy() const {
  busy_ns_ +=
      static_cast<std::uint64_t>(in_use_) * (sim_->Now() - busy_since_);
  busy_since_ = sim_->Now();
}

void Resource::Acquire(Grant on_grant) {
  if (in_use_ < capacity_) {
    AccrueBusy();
    ++in_use_;
    wait_hist_.Record(0);
    on_grant();
    return;
  }
  waiters_.push_back(Waiter{std::move(on_grant), sim_->Now()});
}

void Resource::Release() {
  assert(in_use_ > 0);
  AccrueBusy();
  if (!waiters_.empty()) {
    // Hand the slot directly to the next waiter without ever marking it
    // free: a new Acquire arriving before the grant event fires must
    // queue behind existing waiters (strict FCFS), not jump in. Each
    // release schedules its own zero-delay grant — the same one event
    // per handoff the heap-based core produced, so two releases at one
    // timestamp stay interleaved with whatever else was scheduled
    // between them. Parking the waiter in ready_ (instead of capturing
    // it) keeps the event's capture to `this` — inline, no allocation —
    // and keeps long grant chains iterative.
    ready_.push_back(waiters_.pop_front());
    sim_->Schedule(0, [this] { GrantNextReady(); });
    return;
  }
  --in_use_;
}

void Resource::GrantNextReady() {
  // Exactly one grant event is in flight per ready_ entry, and events
  // fire in schedule order, so the front entry is this event's waiter.
  GrantTo(ready_.pop_front());
}

void Resource::GrantTo(Waiter w) {
  // The slot was carried over from the releasing holder; in_use_ is
  // already counted.
  wait_hist_.Record(sim_->Now() - w.enqueued_at);
  w.grant();
}

Resource::UseOp* Resource::AcquireUseOp() {
  if (!use_op_free_.empty()) {
    UseOp* op = use_op_free_.back();
    use_op_free_.pop_back();
    return op;
  }
  use_ops_.push_back(std::make_unique<UseOp>());
  use_ops_.back()->res = this;
  return use_ops_.back().get();
}

void Resource::ReleaseUseOp(UseOp* op) {
  op->done = InplaceCallback();
  use_op_free_.push_back(op);
}

void Resource::UseFor(SimTime duration, InplaceCallback done) {
  UseOp* op = AcquireUseOp();
  op->duration = duration;
  op->done = std::move(done);
  auto grant = [op] {
    op->res->sim_->Schedule(op->duration, [op] {
      Resource* res = op->res;
      InplaceCallback cb = std::move(op->done);
      res->ReleaseUseOp(op);
      res->Release();
      cb();
    });
  };
  static_assert(InplaceCallback::fits<decltype(grant)>());
  Acquire(grant);
}

std::uint64_t Resource::busy_ns() const {
  AccrueBusy();
  return busy_ns_;
}

double Resource::Utilization() const {
  if (sim_->Now() == 0) return 0.0;
  AccrueBusy();
  return static_cast<double>(busy_ns_) /
         (static_cast<double>(capacity_) *
          static_cast<double>(sim_->Now()));
}

}  // namespace postblock::sim
