#include "sim/resource.h"

#include <cassert>
#include <utility>

namespace postblock::sim {

Resource::Resource(Simulator* sim, std::string name, int capacity)
    : sim_(sim), name_(std::move(name)), capacity_(capacity) {
  assert(capacity_ >= 1);
}

void Resource::AccrueBusy() const {
  busy_ns_ += static_cast<std::uint64_t>(in_use_) * (sim_->Now() - busy_since_);
  busy_since_ = sim_->Now();
}

void Resource::Acquire(Grant on_grant) {
  if (in_use_ < capacity_) {
    AccrueBusy();
    ++in_use_;
    wait_hist_.Record(0);
    on_grant();
    return;
  }
  waiters_.push_back(Waiter{std::move(on_grant), sim_->Now()});
}

void Resource::Release() {
  assert(in_use_ > 0);
  AccrueBusy();
  if (!waiters_.empty()) {
    // Hand the slot directly to the next waiter without ever marking it
    // free: a new Acquire arriving before the zero-delay grant fires
    // must queue behind existing waiters (strict FCFS), not jump in.
    // The hop itself keeps long grant chains iterative, not recursive.
    Waiter w = std::move(waiters_.front());
    waiters_.pop_front();
    sim_->Schedule(0, [this, w = std::move(w)]() mutable {
      GrantTo(std::move(w));
    });
    return;
  }
  --in_use_;
}

void Resource::GrantTo(Waiter w) {
  // The slot was carried over from the releasing holder; in_use_ is
  // already counted.
  wait_hist_.Record(sim_->Now() - w.enqueued_at);
  w.grant();
}

void Resource::UseFor(SimTime duration, std::function<void()> done) {
  Acquire([this, duration, done = std::move(done)]() mutable {
    sim_->Schedule(duration, [this, done = std::move(done)]() {
      Release();
      done();
    });
  });
}

std::uint64_t Resource::busy_ns() const {
  AccrueBusy();
  return busy_ns_;
}

double Resource::Utilization() const {
  if (sim_->Now() == 0) return 0.0;
  AccrueBusy();
  return static_cast<double>(busy_ns_) /
         (static_cast<double>(capacity_) * static_cast<double>(sim_->Now()));
}

}  // namespace postblock::sim
