#include "sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>

namespace postblock::sim {

EventQueue::EventQueue() = default;

/// Canonical placement: the finest level whose block (the bits above the
/// level's slot index) contains both `e.when` and the wheel position.
/// Events past the coarsest level's block go to the overflow map.
void EventQueue::Place(Entry e) {
  for (int level = 0; level < kLevels; ++level) {
    if (HighBits(e.when, level) == HighBits(cur_, level)) {
      const unsigned idx = static_cast<unsigned>(
          (e.when >> (kSlotBits * level)) & kSlotMask);
      slots_[level][idx].push_back(std::move(e));
      occupied_[level] |= 1ull << idx;
      return;
    }
  }
  overflow_[e.when].push_back(std::move(e));
}

/// Moves every entry of a slot that covers cur_ down at least one level.
/// Only covering slots are ever cascaded, so re-placement can never
/// target the vector being iterated.
void EventQueue::CascadeSlot(int level, unsigned idx) {
  auto& v = slots_[level][idx];
  occupied_[level] &= ~(1ull << idx);
  for (Entry& e : v) Place(std::move(e));
  v.clear();  // keeps capacity — steady state stays allocation-free
}

/// Feeds the earliest overflow block into the (empty) wheel. The wheel
/// position's top-level block only ever changes here, which is what
/// keeps overflow entries from interleaving wrongly with wheel entries.
void EventQueue::PullOverflowBlock() {
  assert(!overflow_.empty());
  auto it = overflow_.begin();
  const std::uint64_t block = HighBits(it->first, kLevels - 1);
  const SimTime block_base = block << (kSlotBits * kLevels);
  if (cur_ < block_base) cur_ = block_base;
  while (it != overflow_.end() &&
         HighBits(it->first, kLevels - 1) == block) {
    for (Entry& e : it->second) Place(std::move(e));
    it = overflow_.erase(it);
  }
}

/// Entries in one level-0 slot all share a timestamp (1 ns tick), but
/// cascading can append an early-pushed far-scheduled event behind a
/// later-pushed near-scheduled one. Restore seq order once per slot
/// drain; events appended afterwards carry larger seqs and stay sorted.
void EventQueue::EnsureDrainSlotSorted(std::vector<Entry>& slot) {
  if (sorted_slot_time_ == cur_) return;
  assert(drain_pos_ == 0);
  const auto by_seq = [](const Entry& a, const Entry& b) {
    return a.seq < b.seq;
  };
  if (!std::is_sorted(slot.begin(), slot.end(), by_seq)) {
    std::sort(slot.begin(), slot.end(), by_seq);
  }
  sorted_slot_time_ = cur_;
}

/// Shared search core. Walks the wheel toward the earliest pending
/// event, but commits cur_ only to positions <= `bound`: if the
/// earliest event (or the next slot/overflow hop toward it) lies past
/// `bound`, returns false with cur_ untouched by that final hop. That
/// keeps a deadline-bounded peek from dragging the Push clamp forward
/// to a far-future event. Requires size_ > 0.
bool EventQueue::AdvanceWithin(SimTime bound, SimTime* when) {
  for (;;) {
    // 1) Cascade occupied slots covering cur_, coarsest first, so every
    //    event due in cur_'s level-0 block is actually at level 0. New
    //    pushes can never land in a covering slot (Place resolves them
    //    to a finer level), so one pass per level-0 block suffices.
    if ((cur_ >> kSlotBits) != cascaded_block_) {
      for (int level = kLevels - 1; level >= 1; --level) {
        const unsigned idx = static_cast<unsigned>(
            (cur_ >> (kSlotBits * level)) & kSlotMask);
        if (occupied_[level] & (1ull << idx)) CascadeSlot(level, idx);
      }
      cascaded_block_ = cur_ >> kSlotBits;
    }
    if (occupied_[0] != 0) {
      // Earliest pending event: all level-0 entries live in cur_'s
      // 64 ns block at slot (when & 63), so the lowest set bit is it.
      const unsigned idx =
          static_cast<unsigned>(std::countr_zero(occupied_[0]));
      const SimTime t = (cur_ & ~kSlotMask) | idx;
      assert(t >= cur_);
      if (t > bound) return false;
      cur_ = t;
      EnsureDrainSlotSorted(slots_[0][idx]);
      *when = t;
      return true;
    }
    // 2) Jump to the earliest future slot of the finest nonempty level
    //    (finer levels always precede coarser ones in time); the next
    //    pass cascades it as a covering slot. The slot base is a lower
    //    bound on every event in it, so a base past `bound` proves
    //    nothing is due.
    bool advanced = false;
    for (int level = 1; level < kLevels; ++level) {
      if (occupied_[level] == 0) continue;
      const unsigned idx =
          static_cast<unsigned>(std::countr_zero(occupied_[level]));
      const SimTime block_base = HighBits(cur_, level)
                                 << (kSlotBits * (level + 1));
      const SimTime target =
          block_base + (SimTime{idx} << (kSlotBits * level));
      if (target > bound) return false;
      cur_ = target;
      advanced = true;
      break;
    }
    if (advanced) continue;
    // 3) Wheel drained entirely: feed the next overflow block in — but
    //    not when even the earliest overflow event is past `bound`.
    if (overflow_.begin()->first > bound) return false;
    PullOverflowBlock();
  }
}

SimTime EventQueue::NextTime() {
  assert(size_ > 0);
  SimTime t = 0;
  const bool found = AdvanceWithin(~SimTime{0}, &t);
  assert(found);
  (void)found;
  return t;
}

bool EventQueue::HasEventAtOrBefore(SimTime bound) {
  if (size_ == 0) return false;
  SimTime t = 0;
  return AdvanceWithin(bound, &t);
}

SimTime EventQueue::MinPendingTime() const {
  assert(size_ > 0);
  // Place() keeps a strict time hierarchy regardless of cascade state:
  // entries at level L live inside cur_'s level-L block but outside its
  // level-(L-1) block, so every entry at a finer level precedes every
  // entry at a coarser one, and the whole wheel precedes the overflow
  // map. Within one level, slots are time-ordered and each slot's span
  // ends before the next occupied slot begins — so the global minimum
  // is in the earliest occupied slot of the finest occupied level.
  for (int level = 0; level < kLevels; ++level) {
    if (occupied_[level] == 0) continue;
    const unsigned idx =
        static_cast<unsigned>(std::countr_zero(occupied_[level]));
    if (level == 0) {
      // Level-0 entries in one slot share the 1 ns tick — exact.
      return (cur_ & ~kSlotMask) | idx;
    }
    const auto& slot = slots_[level][idx];
    SimTime m = ~SimTime{0};
    for (const Entry& e : slot) m = std::min(m, e.when);
    return m;
  }
  return overflow_.begin()->first;
}

EventQueue::Callback EventQueue::Pop() {
  const SimTime t = NextTime();
  auto& slot = slots_[0][t & kSlotMask];
  Callback cb = std::move(slot[drain_pos_].cb);
  ++drain_pos_;
  if (drain_pos_ == slot.size()) {
    slot.clear();  // entries already moved-from; capacity retained
    drain_pos_ = 0;
    occupied_[0] &= ~(1ull << (t & kSlotMask));
  }
  --size_;
  return cb;
}

}  // namespace postblock::sim
