#include "sim/event_queue.h"

#include <utility>

namespace postblock::sim {

void EventQueue::Push(SimTime when, Callback cb) {
  heap_.push(Entry{when, next_seq_++, std::move(cb)});
}

EventQueue::Callback EventQueue::Pop() {
  Callback cb = std::move(heap_.top().cb);
  heap_.pop();
  return cb;
}

}  // namespace postblock::sim
