#ifndef POSTBLOCK_SIM_COMPLETION_H_
#define POSTBLOCK_SIM_COMPLETION_H_

#include <cstdint>
#include <functional>

#include "common/status.h"
#include "sim/simulator.h"

namespace postblock::sim {

/// One-shot completion flag with a Status payload. Lets tests and
/// examples write synchronous-looking code over the asynchronous device
/// APIs:
///
///   Completion done;
///   dev->Submit(req, done.AsCallback());
///   ASSERT_TRUE(WaitFor(sim, done));
///   ASSERT_TRUE(done.status().ok());
class Completion {
 public:
  bool done() const { return done_; }
  const Status& status() const { return status_; }
  SimTime completed_at() const { return completed_at_; }

  void Complete(Simulator* sim, Status status = Status::Ok());

  /// Adapts this completion to the `void(Status)` callback convention
  /// used across device interfaces.
  std::function<void(Status)> AsCallback(Simulator* sim);

 private:
  bool done_ = false;
  Status status_;
  SimTime completed_at_ = 0;
};

/// Counts down from `n`; used to await batches of asynchronous IOs.
class CountdownLatch {
 public:
  explicit CountdownLatch(std::uint64_t n) : remaining_(n) {}

  void CountDown() {
    if (remaining_ > 0) --remaining_;
  }
  bool done() const { return remaining_ == 0; }
  std::uint64_t remaining() const { return remaining_; }

  std::function<void(Status)> AsCallback() {
    auto cb = [this](const Status&) { CountDown(); };
    static_assert(sizeof(cb) <= 2 * sizeof(void*));  // std::function SSO
    return cb;
  }

 private:
  std::uint64_t remaining_;
};

/// Runs the simulator until `c` completes. Returns false if the event
/// queue drained first (a lost completion — always a bug).
bool WaitFor(Simulator* sim, const Completion& c);
bool WaitFor(Simulator* sim, const CountdownLatch& l);

}  // namespace postblock::sim

#endif  // POSTBLOCK_SIM_COMPLETION_H_
