#include "sim/reference_event_queue.h"

#include <utility>

namespace postblock::sim {

void ReferenceEventQueue::Push(SimTime when, Callback cb) {
  heap_.push(Entry{when, next_seq_++, std::move(cb)});
}

ReferenceEventQueue::Callback ReferenceEventQueue::Pop() {
  Callback cb = std::move(heap_.top().cb);
  heap_.pop();
  return cb;
}

}  // namespace postblock::sim
