#ifndef POSTBLOCK_SIM_REFERENCE_EVENT_QUEUE_H_
#define POSTBLOCK_SIM_REFERENCE_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace postblock::sim {

/// The original binary-heap + std::function event queue, kept as the
/// executable specification of EventQueue's ordering contract: pop order
/// is (when, push order). tests/event_queue_determinism_test.cc checks
/// the timing wheel against it and bench/bench_sim_core.cc measures the
/// two side by side.
class ReferenceEventQueue {
 public:
  using Callback = std::function<void()>;

  void Push(SimTime when, Callback cb);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Timestamp of the earliest pending event. Requires !empty().
  SimTime NextTime() const { return heap_.top().when; }

  /// True iff the earliest pending event's timestamp is <= `bound`.
  /// Mirrors EventQueue::HasEventAtOrBefore so the determinism test can
  /// interleave deadline-bounded peeks on both implementations.
  bool HasEventAtOrBefore(SimTime bound) const {
    return !heap_.empty() && heap_.top().when <= bound;
  }

  /// Removes and returns the earliest event's callback. Requires !empty().
  Callback Pop();

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;  // insertion order, breaks timestamp ties
    // Shared ownership is not needed; mutable so Pop() can move it out of
    // the (const) priority_queue top.
    mutable Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace postblock::sim

#endif  // POSTBLOCK_SIM_REFERENCE_EVENT_QUEUE_H_
