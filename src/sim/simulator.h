#ifndef POSTBLOCK_SIM_SIMULATOR_H_
#define POSTBLOCK_SIM_SIMULATOR_H_

#include <cassert>
#include <cstdint>
#include <functional>

#include "common/types.h"
#include "sim/event_queue.h"
#include "sim/inplace_callback.h"

namespace postblock::sim {

/// Deterministic single-threaded discrete-event simulator. All devices
/// and host-side components in postblock share one Simulator; "wall
/// clock" in benches means Simulator::Now() at the end of a run.
///
/// Callbacks are InplaceCallback, not std::function: captures up to
/// InplaceCallback::kInlineBytes are stored inline in the event queue
/// entry, so the hot scheduling path performs no heap allocation.
class Simulator {
 public:
  using Callback = InplaceCallback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  /// Schedules a callable to run `delay` ns from now. Templated so the
  /// callable is forwarded all the way into the event-queue slot and
  /// constructed there once, with no intermediate Callback objects.
  template <typename F>
  void Schedule(SimTime delay, F&& f) {
    queue_.Push(now_ + delay, std::forward<F>(f));
  }

  /// Schedules a callable at an absolute timestamp. Scheduling in the
  /// past is a latent time bug: it asserts in debug builds; release
  /// builds clamp to Now() and count it in the sim.schedule_clamped stat.
  template <typename F>
  void ScheduleAt(SimTime when, F&& f) {
    assert(when >= now_ && "ScheduleAt: timestamp in the past");
    if (when < now_) {
      ++schedule_clamped_;
      when = now_;
    }
    queue_.Push(when, std::forward<F>(f));
  }

  /// Runs events until the queue drains. Returns the final time.
  SimTime Run();

  /// Runs events with timestamp <= deadline; leaves later events queued.
  /// The clock is advanced to `deadline` even if the queue drains early.
  /// Work scheduled after RunUntil returns keeps its exact timestamp
  /// even when it lands before the earliest still-pending event (the
  /// deadline check uses a bounded peek that never commits the event
  /// queue past `deadline`).
  SimTime RunUntil(SimTime deadline);

  /// Runs until `pred()` becomes true (checked after each event) or the
  /// queue drains. Returns true iff the predicate was satisfied.
  bool RunUntilPredicate(const std::function<bool()>& pred);

  /// Executes at most one pending event. Returns false if none pending.
  bool Step();

  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t events_executed() const { return events_executed_; }
  /// Times ScheduleAt was called with a timestamp already in the past
  /// (the sim.schedule_clamped stat; nonzero means a latent time bug).
  std::uint64_t schedule_clamped() const { return schedule_clamped_; }

  /// Earliest pending timestamp without committing the wheel position
  /// (pure read; see EventQueue::MinPendingTime). Requires pending work.
  SimTime MinPendingTime() const { return queue_.MinPendingTime(); }

  /// Starts folding every executed event's (timestamp, pending-depth)
  /// into an order-sensitive hash — the committed-schedule fingerprint
  /// the sharded engine compares across worker counts. One predicted
  /// branch per event when off; Simulators never enable it by default.
  void EnableFingerprint() { fingerprint_on_ = true; }
  std::uint64_t fingerprint() const { return fingerprint_; }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t events_executed_ = 0;
  std::uint64_t schedule_clamped_ = 0;
  bool fingerprint_on_ = false;
  std::uint64_t fingerprint_ = 0x6a09e667f3bcc908ull;
};

}  // namespace postblock::sim

#endif  // POSTBLOCK_SIM_SIMULATOR_H_
