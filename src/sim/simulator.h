#ifndef POSTBLOCK_SIM_SIMULATOR_H_
#define POSTBLOCK_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>

#include "common/types.h"
#include "sim/event_queue.h"

namespace postblock::sim {

/// Deterministic single-threaded discrete-event simulator. All devices
/// and host-side components in postblock share one Simulator; "wall
/// clock" in benches means Simulator::Now() at the end of a run.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  /// Schedules `cb` to run `delay` ns from now.
  void Schedule(SimTime delay, std::function<void()> cb) {
    queue_.Push(now_ + delay, std::move(cb));
  }

  /// Schedules `cb` at an absolute timestamp (must be >= Now()).
  void ScheduleAt(SimTime when, std::function<void()> cb) {
    queue_.Push(when < now_ ? now_ : when, std::move(cb));
  }

  /// Runs events until the queue drains. Returns the final time.
  SimTime Run();

  /// Runs events with timestamp <= deadline; leaves later events queued.
  /// The clock is advanced to `deadline` even if the queue drains early.
  SimTime RunUntil(SimTime deadline);

  /// Runs until `pred()` becomes true (checked after each event) or the
  /// queue drains. Returns true iff the predicate was satisfied.
  bool RunUntilPredicate(const std::function<bool()>& pred);

  /// Executes at most one pending event. Returns false if none pending.
  bool Step();

  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t events_executed() const { return events_executed_; }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t events_executed_ = 0;
};

}  // namespace postblock::sim

#endif  // POSTBLOCK_SIM_SIMULATOR_H_
