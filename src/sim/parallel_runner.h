#ifndef POSTBLOCK_SIM_PARALLEL_RUNNER_H_
#define POSTBLOCK_SIM_PARALLEL_RUNNER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace postblock::sim {

/// Result of one sweep job: an ordered metric list (order is part of
/// the contract so reports and equality checks are deterministic) plus
/// a freeform note. Doubles are compared bitwise by the harness tests:
/// a job must be a pure function of its closure, so running it on a
/// worker thread cannot change a single bit of its result.
struct SweepResult {
  std::string name;
  std::vector<std::pair<std::string, double>> metrics;
  std::string note;
  bool ok = true;
  std::string error;  // set when the job threw
};

/// One parameter point: a name and a self-contained job. The job
/// builds its own Simulator/device stack, runs it, and returns the
/// numbers — full multi-instance isolation (the whole postblock stack
/// is thread-confined: no mutable globals besides the per-thread
/// CallbackSlab, which is itself thread-local).
struct SweepJob {
  std::string name;
  std::function<SweepResult()> fn;
};

/// Tier B of the parallel layer: runs N independent simulator
/// instances on up to `threads` OS threads (parameter sweeps, seed
/// fan-outs), aggregating results in job order — so the output is
/// identical to running the jobs sequentially, just faster. Workers
/// claim jobs from an atomic cursor; results land in per-job slots.
class ParallelRunner {
 public:
  /// threads == 0 or 1 runs jobs inline on the calling thread.
  explicit ParallelRunner(std::uint32_t threads) : threads_(threads) {}

  /// Runs every job, returns results indexed like `jobs`. A throwing
  /// job yields ok=false with the exception text; it never takes down
  /// the sweep or perturbs other jobs.
  std::vector<SweepResult> RunAll(std::vector<SweepJob> jobs) const;

  std::uint32_t threads() const { return threads_; }

  /// Renders a sweep report as one JSON object: {"meta": {...},
  /// "runs": [{name, ok, metrics...}...]}. `meta_fields` is spliced
  /// verbatim into the meta object (callers stamp git SHA / thread
  /// counts via bench::WriteJsonMeta-style fragments).
  static std::string SweepReportJson(
      const std::vector<SweepResult>& results,
      const std::string& meta_fields);

 private:
  std::uint32_t threads_;
};

}  // namespace postblock::sim

#endif  // POSTBLOCK_SIM_PARALLEL_RUNNER_H_
