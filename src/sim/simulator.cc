#include "sim/simulator.h"

namespace postblock::sim {

bool Simulator::Step() {
  if (queue_.empty()) return false;
  now_ = queue_.NextTime();
  auto cb = queue_.Pop();
  ++events_executed_;
  if (fingerprint_on_) {
    // splitmix64-style fold: order-sensitive in the executed timestamp
    // sequence, with the pending depth mixed in so two schedules that
    // pop the same times in a different structural order still diverge.
    std::uint64_t x = now_ ^ (queue_.size() * 0x9e3779b97f4a7c15ull);
    x ^= fingerprint_ + 0x9e3779b97f4a7c15ull + (fingerprint_ << 6) +
         (fingerprint_ >> 2);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    fingerprint_ = x ^ (x >> 31);
  }
  cb();
  return true;
}

SimTime Simulator::Run() {
  while (Step()) {
  }
  return now_;
}

SimTime Simulator::RunUntil(SimTime deadline) {
  // HasEventAtOrBefore, not NextTime: a plain peek would commit the
  // queue's wheel position to the earliest pending event even when it
  // is past the deadline, and anything scheduled afterwards between the
  // deadline and that event would be clamped onto (and ordered after)
  // it. The bounded peek never advances the wheel past `deadline`.
  while (queue_.HasEventAtOrBefore(deadline)) {
    Step();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

bool Simulator::RunUntilPredicate(const std::function<bool()>& pred) {
  if (pred()) return true;
  while (Step()) {
    if (pred()) return true;
  }
  return false;
}

}  // namespace postblock::sim
