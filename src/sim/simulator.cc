#include "sim/simulator.h"

namespace postblock::sim {

bool Simulator::Step() {
  if (queue_.empty()) return false;
  now_ = queue_.NextTime();
  auto cb = queue_.Pop();
  ++events_executed_;
  cb();
  return true;
}

SimTime Simulator::Run() {
  while (Step()) {
  }
  return now_;
}

SimTime Simulator::RunUntil(SimTime deadline) {
  // HasEventAtOrBefore, not NextTime: a plain peek would commit the
  // queue's wheel position to the earliest pending event even when it
  // is past the deadline, and anything scheduled afterwards between the
  // deadline and that event would be clamped onto (and ordered after)
  // it. The bounded peek never advances the wheel past `deadline`.
  while (queue_.HasEventAtOrBefore(deadline)) {
    Step();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

bool Simulator::RunUntilPredicate(const std::function<bool()>& pred) {
  if (pred()) return true;
  while (Step()) {
    if (pred()) return true;
  }
  return false;
}

}  // namespace postblock::sim
