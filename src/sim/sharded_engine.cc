#include "sim/sharded_engine.h"

#include <algorithm>
#include <chrono>

namespace postblock::sim {

namespace {

/// Wall clock for the observer's dual-clock hooks. Only called when an
/// observer is attached, so the detached engine stays syscall-free.
///
/// Windows on this engine run ~a few µs each, so the profiler reads
/// the clock at window rate: a vDSO clock_gettime (~20-25ns) per read
/// would cost several percent of the whole run. On x86-64 we read the
/// TSC instead (~6ns) and scale to nanoseconds with a mapping
/// calibrated once against steady_clock — at the first attached
/// engine's construction, never inside a window (the constructor warms
/// the function-local static below before the pool starts).
#if defined(__x86_64__)
struct TscClock {
  std::uint64_t base = 0;
  double ns_per_tick = 1.0;

  TscClock() {
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    const std::uint64_t c0 = __builtin_ia32_rdtsc();
    // ~2ms spin bounds the frequency-estimate error around 0.1%;
    // profile buckets are relative attributions, that is plenty.
    while (clock::now() - t0 < std::chrono::milliseconds(2)) {
    }
    const auto t1 = clock::now();
    const std::uint64_t c1 = __builtin_ia32_rdtsc();
    ns_per_tick = static_cast<double>(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          t1 - t0)
                          .count()) /
                  static_cast<double>(c1 - c0);
    base = c0;
  }

  std::uint64_t Now() const {
    return static_cast<std::uint64_t>(
        static_cast<double>(__builtin_ia32_rdtsc() - base) * ns_per_tick);
  }
};

std::uint64_t WallNs() {
  static const TscClock clock;
  return clock.Now();
}
#else
std::uint64_t WallNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
#endif

}  // namespace

ShardedEngine::ShardedEngine(const ShardedConfig& config)
    : config_(config) {
  assert(config_.shards >= 1);
  assert(config_.lookahead >= 1);
  shards_.reserve(config_.shards);
  for (std::uint32_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    if (config_.fingerprint) shards_.back()->sim.EnableFingerprint();
  }
  if (config_.observer != nullptr) {
    (void)WallNs();  // calibrate the wall clock outside any window
    config_.observer->OnAttach(config_);
    obs_stride_ = std::max(1u, config_.observer->WallSampleStride());
    obs_countdown_ = 1;  // the first window is always sampled
  }
  if (config_.workers > 1) StartPool();
}

ShardedEngine::~ShardedEngine() { StopPool(); }

std::size_t ShardedEngine::DeliverMessages() {
  merge_buf_.clear();
  for (auto& shard : shards_) {
    for (Message& m : shard->outbox) merge_buf_.push_back(std::move(m));
    shard->outbox.clear();
  }
  if (merge_buf_.empty()) return 0;
  // The deterministic merge: a total order on cross-shard events that
  // no worker interleaving can perturb. Push order into the destination
  // wheel encodes the tiebreak (EventQueue fires equal timestamps in
  // insertion order).
  std::sort(merge_buf_.begin(), merge_buf_.end(),
            [](const Message& a, const Message& b) {
              if (a.when != b.when) return a.when < b.when;
              if (a.from != b.from) return a.from < b.from;
              return a.seq < b.seq;
            });
  // Messages are observed only when the window they precede is sampled
  // (countdown at 1 means the next RunWindow decrements it to 0), so
  // the flow matrix stays consistent with the sampled window set.
  EngineObserver* const obs =
      (config_.observer != nullptr && obs_countdown_ == 1)
          ? config_.observer
          : nullptr;
  for (Message& m : merge_buf_) {
    if (obs != nullptr) obs->OnMessage(m.from, m.to, m.when);
    // The lookahead contract makes every message strictly future for
    // its destination (when >= window end > every shard clock), so the
    // exact timestamp survives — ScheduleAt would assert otherwise.
    shards_[m.to]->sim.ScheduleAt(m.when, std::move(m.cb));
  }
  const std::size_t n = merge_buf_.size();
  messages_delivered_ += n;
  merge_buf_.clear();
  return n;
}

SimTime ShardedEngine::GlobalMinPending() {
  SimTime min = kNoEvent;
  for (auto& shard : shards_) {
    shard->min_pending = shard->sim.pending_events() == 0
                             ? kNoEvent
                             : shard->sim.MinPendingTime();
    min = std::min(min, shard->min_pending);
  }
  return min;
}

std::uint64_t ShardedEngine::RunShardRange(std::uint32_t worker_id,
                                           SimTime floor,
                                           SimTime window_end,
                                           std::uint64_t wall_hint) {
  EngineObserver* const obs = window_obs_;
  const std::uint32_t stride = std::max(1u, config_.workers);
  if (obs == nullptr) {
    for (std::uint32_t s = worker_id; s < num_shards(); s += stride) {
      shards_[s]->sim.RunUntil(window_end);
    }
    return 0;
  }
  // Dual-clock instrumentation: everything here is read-only on the
  // shard (min_pending is the coordinator's cached non-committing
  // probe from GlobalMinPending) or happens after RunUntil committed
  // the exact same events it would have committed unobserved — the
  // schedule cannot notice the observer. This worker's shards run back
  // to back, so each shard's end timestamp doubles as the next shard's
  // begin (and the caller's `wall_hint` seeds the first) — one clock
  // read per shard, not two.
  std::uint64_t wall = wall_hint != 0 ? wall_hint : WallNs();
  for (std::uint32_t s = worker_id; s < num_shards(); s += stride) {
    Shard& shard = *shards_[s];
    const SimTime min_pending = shard.min_pending;
    const std::uint64_t events_before = shard.sim.events_executed();
    shard.sim.RunUntil(window_end);
    const std::uint64_t wall_end = WallNs();
    obs->OnShardWindow(rounds_, s, worker_id, floor, min_pending,
                       shard.sim.events_executed() - events_before, wall,
                       wall_end);
    wall = wall_end;
  }
  return wall;
}

void ShardedEngine::RunWindow(SimTime floor, SimTime window_end) {
  ++rounds_;
  // Window-sampling gate: observe this window iff the countdown fires.
  // window_obs_ is published to helpers by the generation bump below,
  // alongside the window bounds.
  EngineObserver* obs = nullptr;
  if (config_.observer != nullptr && --obs_countdown_ == 0) {
    obs_countdown_ = obs_stride_;
    obs = config_.observer;
  }
  window_obs_ = obs;
  std::uint64_t wall = 0;
  if (obs != nullptr) {
    wall = WallNs();
    obs->OnWindowBegin(rounds_, floor, window_end, wall);
  }
  // `wall` chains through the single-thread paths: the window-begin
  // read seeds the first shard, and the last shard's end read IS the
  // window end (nothing runs after it). The pool path must take a
  // fresh read instead — the window ends at the last helper's ack,
  // not at the coordinator's own last shard.
  bool reuse_wall = false;
  if (config_.workers == 0) {
    // The sequential reference: same windows, same merge, one thread,
    // shards in id order. Everything the parallel path must match.
    wall = RunShardRange(0, floor, window_end, wall);
    reuse_wall = true;
  } else if (pool_.empty()) {
    wall = RunShardRange(0, floor, window_end, wall);
    reuse_wall = true;
  } else {
    pool_window_end_ = window_end;
    pool_window_floor_ = floor;
    acks_.store(0, std::memory_order_relaxed);
    // Release the helpers: the generation bump publishes
    // pool_window_end_ / pool_window_floor_.
    generation_.fetch_add(1, std::memory_order_release);
    generation_.notify_all();
    RunShardRange(0, floor, window_end, wall);  // the caller is worker 0
    // Wait for all helpers to ack this window.
    const auto helpers = static_cast<std::uint32_t>(pool_.size());
    std::uint32_t done = acks_.load(std::memory_order_acquire);
    while (done != helpers) {
      int spins = 4096;
      while (spins-- > 0 &&
             (done = acks_.load(std::memory_order_acquire)) != helpers) {
      }
      if (done != helpers) acks_.wait(done, std::memory_order_acquire);
    }
  }
  if (obs != nullptr) {
    obs->OnWindowEnd(rounds_, reuse_wall ? wall : WallNs());
  }
}

SimTime ShardedEngine::Run() {
  running_ = true;
  for (;;) {
    DeliverMessages();
    const SimTime min = GlobalMinPending();
    if (min == kNoEvent) break;  // outboxes empty too: delivery ran first
    const SimTime window_end = min + config_.lookahead - 1;
    RunWindow(min, window_end);
    committed_ = window_end;
  }
  running_ = false;
  // Shards that drained early parked their clocks at the last window
  // end; committed_ is the global end of simulated time.
  return committed_;
}

SimTime ShardedEngine::RunUntil(SimTime deadline) {
  running_ = true;
  for (;;) {
    DeliverMessages();
    const SimTime min = GlobalMinPending();
    if (min == kNoEvent || min > deadline) break;
    // Never run a window past the deadline: later events stay queued
    // with exact timestamps (Simulator::RunUntil's bounded peek).
    const SimTime window_end =
        std::min(min + config_.lookahead - 1, deadline);
    RunWindow(min, window_end);
    committed_ = window_end;
  }
  if (committed_ < deadline) {
    for (auto& shard : shards_) shard->sim.RunUntil(deadline);
    committed_ = deadline;
  }
  running_ = false;
  return committed_;
}

std::uint64_t ShardedEngine::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->sim.events_executed();
  return total;
}

std::uint64_t ShardedEngine::Fingerprint() const {
  std::uint64_t h = 0x243f6a8885a308d3ull;
  for (const auto& shard : shards_) {
    const std::uint64_t fp =
        shard->sim.fingerprint() ^ shard->sim.events_executed();
    h ^= fp + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

void ShardedEngine::StartPool() {
  const std::uint32_t helpers = config_.workers - 1;
  pool_.reserve(helpers);
  for (std::uint32_t w = 1; w <= helpers; ++w) {
    pool_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

void ShardedEngine::StopPool() {
  if (pool_.empty()) return;
  stop_.store(true, std::memory_order_release);
  generation_.fetch_add(1, std::memory_order_release);
  generation_.notify_all();
  for (auto& t : pool_) t.join();
  pool_.clear();
}

void ShardedEngine::WorkerLoop(std::uint32_t worker_id) {
  // The stall-begin read is gated on config_.observer (whether the
  // window being waited for is sampled isn't knowable until release);
  // the OnWorkerStall call itself follows window_obs_, so stall
  // attribution covers exactly the sampled windows.
  const bool attached = config_.observer != nullptr;
  std::uint64_t seen = 0;
  for (;;) {
    const std::uint64_t stall_begin = attached ? WallNs() : 0;
    std::uint64_t gen = generation_.load(std::memory_order_acquire);
    while (gen == seen) {
      int spins = 4096;
      while (spins-- > 0 &&
             (gen = generation_.load(std::memory_order_acquire)) == seen) {
      }
      if (gen == seen) generation_.wait(seen, std::memory_order_acquire);
      gen = generation_.load(std::memory_order_acquire);
    }
    seen = gen;
    if (stop_.load(std::memory_order_acquire)) return;
    if (window_obs_ != nullptr) {
      window_obs_->OnWorkerStall(worker_id, WallNs() - stall_begin);
    }
    RunShardRange(worker_id, pool_window_floor_, pool_window_end_);
    acks_.fetch_add(1, std::memory_order_release);
    acks_.notify_one();
  }
}

}  // namespace postblock::sim
