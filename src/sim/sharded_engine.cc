#include "sim/sharded_engine.h"

#include <algorithm>

namespace postblock::sim {

ShardedEngine::ShardedEngine(const ShardedConfig& config)
    : config_(config) {
  assert(config_.shards >= 1);
  assert(config_.lookahead >= 1);
  shards_.reserve(config_.shards);
  for (std::uint32_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    if (config_.fingerprint) shards_.back()->sim.EnableFingerprint();
  }
  if (config_.workers > 1) StartPool();
}

ShardedEngine::~ShardedEngine() { StopPool(); }

std::size_t ShardedEngine::DeliverMessages() {
  merge_buf_.clear();
  for (auto& shard : shards_) {
    for (Message& m : shard->outbox) merge_buf_.push_back(std::move(m));
    shard->outbox.clear();
  }
  if (merge_buf_.empty()) return 0;
  // The deterministic merge: a total order on cross-shard events that
  // no worker interleaving can perturb. Push order into the destination
  // wheel encodes the tiebreak (EventQueue fires equal timestamps in
  // insertion order).
  std::sort(merge_buf_.begin(), merge_buf_.end(),
            [](const Message& a, const Message& b) {
              if (a.when != b.when) return a.when < b.when;
              if (a.from != b.from) return a.from < b.from;
              return a.seq < b.seq;
            });
  for (Message& m : merge_buf_) {
    // The lookahead contract makes every message strictly future for
    // its destination (when >= window end > every shard clock), so the
    // exact timestamp survives — ScheduleAt would assert otherwise.
    shards_[m.to]->sim.ScheduleAt(m.when, std::move(m.cb));
  }
  const std::size_t n = merge_buf_.size();
  messages_delivered_ += n;
  merge_buf_.clear();
  return n;
}

SimTime ShardedEngine::GlobalMinPending() const {
  SimTime min = kNoEvent;
  for (const auto& shard : shards_) {
    if (shard->sim.pending_events() == 0) continue;
    min = std::min(min, shard->sim.MinPendingTime());
  }
  return min;
}

void ShardedEngine::RunShardRange(std::uint32_t worker_id,
                                  SimTime window_end) {
  const std::uint32_t stride = std::max(1u, config_.workers);
  for (std::uint32_t s = worker_id; s < num_shards(); s += stride) {
    shards_[s]->sim.RunUntil(window_end);
  }
}

void ShardedEngine::RunWindow(SimTime window_end) {
  ++rounds_;
  if (config_.workers == 0) {
    // The sequential reference: same windows, same merge, one thread,
    // shards in id order. Everything the parallel path must match.
    for (auto& shard : shards_) shard->sim.RunUntil(window_end);
    return;
  }
  if (pool_.empty()) {
    RunShardRange(0, window_end);
    return;
  }
  pool_window_end_ = window_end;
  acks_.store(0, std::memory_order_relaxed);
  // Release the helpers: the generation bump publishes pool_window_end_.
  generation_.fetch_add(1, std::memory_order_release);
  generation_.notify_all();
  RunShardRange(0, window_end);  // the calling thread is worker 0
  // Wait for all helpers to ack this window.
  const auto helpers = static_cast<std::uint32_t>(pool_.size());
  std::uint32_t done = acks_.load(std::memory_order_acquire);
  while (done != helpers) {
    int spins = 4096;
    while (spins-- > 0 &&
           (done = acks_.load(std::memory_order_acquire)) != helpers) {
    }
    if (done != helpers) acks_.wait(done, std::memory_order_acquire);
  }
}

SimTime ShardedEngine::Run() {
  running_ = true;
  for (;;) {
    DeliverMessages();
    const SimTime min = GlobalMinPending();
    if (min == kNoEvent) break;  // outboxes empty too: delivery ran first
    const SimTime window_end = min + config_.lookahead - 1;
    RunWindow(window_end);
    committed_ = window_end;
  }
  running_ = false;
  // Shards that drained early parked their clocks at the last window
  // end; committed_ is the global end of simulated time.
  return committed_;
}

SimTime ShardedEngine::RunUntil(SimTime deadline) {
  running_ = true;
  for (;;) {
    DeliverMessages();
    const SimTime min = GlobalMinPending();
    if (min == kNoEvent || min > deadline) break;
    // Never run a window past the deadline: later events stay queued
    // with exact timestamps (Simulator::RunUntil's bounded peek).
    const SimTime window_end =
        std::min(min + config_.lookahead - 1, deadline);
    RunWindow(window_end);
    committed_ = window_end;
  }
  if (committed_ < deadline) {
    for (auto& shard : shards_) shard->sim.RunUntil(deadline);
    committed_ = deadline;
  }
  running_ = false;
  return committed_;
}

std::uint64_t ShardedEngine::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->sim.events_executed();
  return total;
}

std::uint64_t ShardedEngine::Fingerprint() const {
  std::uint64_t h = 0x243f6a8885a308d3ull;
  for (const auto& shard : shards_) {
    const std::uint64_t fp =
        shard->sim.fingerprint() ^ shard->sim.events_executed();
    h ^= fp + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

void ShardedEngine::StartPool() {
  const std::uint32_t helpers = config_.workers - 1;
  pool_.reserve(helpers);
  for (std::uint32_t w = 1; w <= helpers; ++w) {
    pool_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

void ShardedEngine::StopPool() {
  if (pool_.empty()) return;
  stop_.store(true, std::memory_order_release);
  generation_.fetch_add(1, std::memory_order_release);
  generation_.notify_all();
  for (auto& t : pool_) t.join();
  pool_.clear();
}

void ShardedEngine::WorkerLoop(std::uint32_t worker_id) {
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t gen = generation_.load(std::memory_order_acquire);
    while (gen == seen) {
      int spins = 4096;
      while (spins-- > 0 &&
             (gen = generation_.load(std::memory_order_acquire)) == seen) {
      }
      if (gen == seen) generation_.wait(seen, std::memory_order_acquire);
      gen = generation_.load(std::memory_order_acquire);
    }
    seen = gen;
    if (stop_.load(std::memory_order_acquire)) return;
    RunShardRange(worker_id, pool_window_end_);
    acks_.fetch_add(1, std::memory_order_release);
    acks_.notify_one();
  }
}

}  // namespace postblock::sim
