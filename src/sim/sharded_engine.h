#ifndef POSTBLOCK_SIM_SHARDED_ENGINE_H_
#define POSTBLOCK_SIM_SHARDED_ENGINE_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/types.h"
#include "sim/inplace_callback.h"
#include "sim/simulator.h"

namespace postblock::sim {

struct ShardedConfig;

/// Execution-observer seam for the sharded engine. All hooks are
/// no-ops by default and carry both clocks: sim-time window bounds and
/// wall-clock nanoseconds (steady_clock). The engine reads the wall
/// clock *only* when an observer is attached, and nothing an observer
/// returns feeds back into windowing or merge decisions — attaching
/// one is schedule-byte-identical by construction (gate 9 holds this).
///
/// Threading contract:
///   - OnAttach / OnWindowBegin / OnWindowEnd / OnMessage run on the
///     coordinator thread, strictly between windows.
///   - OnShardWindow runs on the worker thread that executed the
///     shard's window (exactly one call per shard per window; shard s
///     is statically owned by worker s % workers). Implementations
///     must confine writes to per-shard state; the engine's ack
///     release / coordinator acquire pair makes those writes visible
///     to OnWindowEnd without extra synchronization.
///   - OnWorkerStall runs on helper threads (worker ids >= 1) after
///     each generation-barrier wait; the reported span covers the
///     whole wait, including coordinator merge time between windows.
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;

  /// Engine constructed; observe the final config (shards, workers,
  /// lookahead) to size per-shard state.
  virtual void OnAttach(const ShardedConfig& /*config*/) {}

  /// Coordinator is about to run window [floor, end] (inclusive end:
  /// floor + lookahead - 1, possibly clamped by a deadline).
  virtual void OnWindowBegin(std::uint64_t /*round*/, SimTime /*floor*/,
                             SimTime /*end*/, std::uint64_t /*wall_begin_ns*/) {}

  /// Shard `shard` finished its slice of window `round` on thread
  /// `worker`. `min_pending_before` is the shard's earliest pending
  /// timestamp before the window ran (kNoEvent when it was idle) —
  /// minus `floor`, that is the lookahead slack. `events_delta` is the
  /// number of events the shard committed inside this window.
  virtual void OnShardWindow(std::uint64_t /*round*/, std::uint32_t /*shard*/,
                             std::uint32_t /*worker*/, SimTime /*floor*/,
                             SimTime /*min_pending_before*/,
                             std::uint64_t /*events_delta*/,
                             std::uint64_t /*wall_begin_ns*/,
                             std::uint64_t /*wall_end_ns*/) {}

  /// All shards acked window `round`; the coordinator owns the engine
  /// again. Fold per-shard scratch here.
  virtual void OnWindowEnd(std::uint64_t /*round*/,
                           std::uint64_t /*wall_end_ns*/) {}

  /// One cross-shard message delivered (coordinator, merge order).
  virtual void OnMessage(std::uint32_t /*from*/, std::uint32_t /*to*/,
                         SimTime /*when*/) {}

  /// Helper `worker` spent `stall_wall_ns` waiting at the generation
  /// barrier before its latest release.
  virtual void OnWorkerStall(std::uint32_t /*worker*/,
                             std::uint64_t /*stall_wall_ns*/) {}

  /// Window sampling stride, read once at attach. The engine calls the
  /// wall-clocked hooks (OnWindowBegin / OnShardWindow / OnWindowEnd /
  /// OnMessage / OnWorkerStall) only on every N-th window — the
  /// default 1 observes everything. Windows on this engine run a few
  /// µs; sampling keeps an always-on profiler's amortized cost in the
  /// noise while every identity (wall-bucket conservation, the message
  /// matrix vs. OnMessage calls) stays exact over the sampled set.
  /// Sampling never touches the schedule: which windows run, and what
  /// they commit, is identical at every stride.
  virtual std::uint32_t WallSampleStride() const { return 1; }
};

/// Configuration for a ShardedEngine.
struct ShardedConfig {
  /// Number of shards (independent event loops). Shard ids are
  /// [0, shards). Each shard owns its own Simulator (timing wheel +
  /// clock); events on different shards may only interact through
  /// Post(), never by touching each other's state directly.
  std::uint32_t shards = 1;

  /// Worker threads executing shard windows. 0 = sequential reference
  /// loop (no pool, no atomics — the single-threaded core). W >= 1 uses
  /// the calling thread plus W-1 helpers, so workers=1 exercises the
  /// parallel code path degenerately. The committed schedule is
  /// byte-identical at every value, including 0.
  std::uint32_t workers = 0;

  /// Conservative-lookahead bound: every Post() issued from an event
  /// executing at time t must target `when >= t + lookahead`. This is
  /// the cross-shard seam's minimum latency (e.g. controller dispatch /
  /// completion-routing delay) and directly sets the rendezvous window
  /// width — shards run ahead `lookahead - 1` ns past the global next
  /// event before they must merge.
  SimTime lookahead = 1000;

  /// Fold every executed event into per-shard schedule fingerprints
  /// (Simulator::EnableFingerprint). Cheap; on by default so the
  /// determinism gates always have something to compare.
  bool fingerprint = true;

  /// Optional execution observer (obs::EngineProfiler). Not owned;
  /// must outlive the engine. nullptr (the default) keeps the engine
  /// free of wall-clock reads entirely.
  EngineObserver* observer = nullptr;
};

/// Sharded parallel discrete-event engine: N per-shard event loops with
/// conservative-lookahead synchronization.
///
/// Execution proceeds in rendezvous rounds. At each barrier the engine
/// (single-threaded) (1) delivers all cross-shard messages posted
/// during the previous window — sorted by (timestamp, sender shard,
/// sender sequence), so ties merge identically no matter which worker
/// produced them first — and (2) picks the next window
/// [W, W + lookahead) where W is the global earliest pending timestamp
/// (a non-committing wheel probe). Every shard then runs its local
/// events with timestamp < W + lookahead, in parallel. The lookahead
/// contract (`when >= t + lookahead` for every Post) guarantees any
/// message produced inside the window lands at or after the window
/// end, so delivery at the next barrier never back-dates an event.
///
/// Determinism: window boundaries are a pure function of committed
/// state, shards share nothing inside a window, and the merge order is
/// total — so the committed global schedule is byte-identical at any
/// worker count, including the workers=0 sequential reference. The
/// per-shard Simulator fingerprints (plus model observables) are the
/// checkable witness; gate 7 in scripts/check_perf.sh holds runs at
/// 1/2/4 workers to the workers=0 fingerprint.
class ShardedEngine {
 public:
  explicit ShardedEngine(const ShardedConfig& config);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  const ShardedConfig& config() const { return config_; }

  /// The shard's local event loop, for scheduling shard-local work.
  /// Setup code may use it freely before Run(); during execution only
  /// the event currently running on shard `id` may touch it.
  Simulator* shard(std::uint32_t id) { return &shards_[id]->sim; }

  /// Committed global time: every shard has executed all events below
  /// this (the end of the last completed window).
  SimTime Now() const { return committed_; }

  /// Cross-shard event: schedules `f` on shard `to` at absolute time
  /// `when`. Must be called either before Run()/RunUntil() (setup), or
  /// from an event currently executing on shard `from` with
  /// `when >= shard(from)->Now() + lookahead` — asserted. Messages are
  /// delivered at the next rendezvous, merged in (when, from, seq)
  /// order.
  template <typename F>
  void Post(std::uint32_t from, std::uint32_t to, SimTime when, F&& f) {
    assert(to < num_shards());
    Shard& src = *shards_[from];
    assert(!running_ || when >= src.sim.Now() + config_.lookahead);
    src.outbox.push_back(
        Message{when, from, to, src.next_msg_seq++, std::forward<F>(f)});
  }

  /// Runs rounds until every shard drains and no message is in flight.
  /// Returns the final committed time (max shard Now()).
  SimTime Run();

  /// Runs rounds covering timestamps <= deadline; later work stays
  /// queued. All shard clocks (and Now()) advance to `deadline`.
  SimTime RunUntil(SimTime deadline);

  /// Events executed across all shards.
  std::uint64_t events_executed() const;
  /// Combined committed-schedule fingerprint: per-shard Simulator
  /// fingerprints folded in shard order (worker-count invariant).
  std::uint64_t Fingerprint() const;
  /// Barrier rendezvous count (rounds) and cross-shard message count —
  /// the seam-traffic observability bench_parallel reports.
  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t messages_delivered() const { return messages_delivered_; }

  /// Sentinel "no pending event" timestamp, as passed to
  /// EngineObserver::OnShardWindow for idle shards.
  static constexpr SimTime kNoEvent = ~SimTime{0};

 private:
  struct Message {
    SimTime when;
    std::uint32_t from;
    std::uint32_t to;
    std::uint64_t seq;  // per-sender counter: the deterministic tiebreak
    InplaceCallback cb;
  };

  /// One shard: its Simulator plus the outbox its events append
  /// cross-shard messages to. Only the worker running the shard's
  /// window touches it between barriers; the coordinator only between
  /// windows. Padded so neighbouring shards never share a cache line.
  struct alignas(64) Shard {
    Simulator sim;
    std::vector<Message> outbox;
    std::uint64_t next_msg_seq = 0;
    /// Earliest pending timestamp, cached by GlobalMinPending() (which
    /// probes every shard anyway) so the observed RunShardRange can
    /// report lookahead slack without a second wheel scan. Valid for
    /// the window derived from that probe: messages were already
    /// delivered, and nothing else touches the shard's queue until its
    /// own RunUntil. Coordinator-written between windows; the
    /// generation release/acquire pair publishes it to workers.
    SimTime min_pending = kNoEvent;
  };

  /// Delivers all pending outbox messages in merge order. Returns the
  /// number delivered. Coordinator-only (between windows).
  std::size_t DeliverMessages();
  /// Earliest pending timestamp across shards, or kNoEvent when idle.
  /// Caches each shard's own minimum in Shard::min_pending as a side
  /// effect (the slack probe for an observed window).
  SimTime GlobalMinPending();
  /// Runs one window [floor, window_end] on every shard, using the
  /// worker pool when configured. `floor` is the global min-pending
  /// probe the window was derived from (observer-only; RunUntil clamps
  /// window_end, so the floor cannot be recovered from it).
  void RunWindow(SimTime floor, SimTime window_end);
  /// Runs this worker's shards up to window_end. With an observer
  /// attached, returns the wall timestamp of the last shard's end
  /// (chained reads: each end doubles as the next begin; `wall_hint`
  /// seeds the first when nonzero). Returns 0 unobserved.
  std::uint64_t RunShardRange(std::uint32_t worker_id, SimTime floor,
                              SimTime window_end,
                              std::uint64_t wall_hint = 0);

  // --- Worker pool -----------------------------------------------------
  // Generation barrier on C++20 atomic wait/notify with a short spin
  // prefix: the coordinator publishes (window_end, generation), each
  // helper runs its static share of shards (shard s belongs to worker
  // s % workers), then acks. Static assignment keeps a shard's window
  // on one thread for cache locality; determinism never depends on it.
  void StartPool();
  void StopPool();
  void WorkerLoop(std::uint32_t worker_id);

  ShardedConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  SimTime committed_ = 0;
  bool running_ = false;
  std::uint64_t rounds_ = 0;
  std::uint64_t messages_delivered_ = 0;

  std::vector<std::thread> pool_;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::uint32_t> acks_{0};
  std::atomic<bool> stop_{false};
  // Published before the generation bump (the release/acquire pair on
  // generation_ makes all three visible to helpers).
  SimTime pool_window_end_ = 0;
  SimTime pool_window_floor_ = 0;
  // The observer for the in-flight window: config_.observer on sampled
  // windows (every obs_stride_-th, countdown below), nullptr otherwise.
  // Workers and RunShardRange read this, never config_.observer.
  EngineObserver* window_obs_ = nullptr;
  std::uint32_t obs_stride_ = 1;
  std::uint32_t obs_countdown_ = 1;  // fires (samples) when it hits 0

  std::vector<Message> merge_buf_;  // reused between rounds
};

}  // namespace postblock::sim

#endif  // POSTBLOCK_SIM_SHARDED_ENGINE_H_
