#ifndef POSTBLOCK_SIM_SHARDED_ENGINE_H_
#define POSTBLOCK_SIM_SHARDED_ENGINE_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/types.h"
#include "sim/inplace_callback.h"
#include "sim/simulator.h"

namespace postblock::sim {

/// Configuration for a ShardedEngine.
struct ShardedConfig {
  /// Number of shards (independent event loops). Shard ids are
  /// [0, shards). Each shard owns its own Simulator (timing wheel +
  /// clock); events on different shards may only interact through
  /// Post(), never by touching each other's state directly.
  std::uint32_t shards = 1;

  /// Worker threads executing shard windows. 0 = sequential reference
  /// loop (no pool, no atomics — the single-threaded core). W >= 1 uses
  /// the calling thread plus W-1 helpers, so workers=1 exercises the
  /// parallel code path degenerately. The committed schedule is
  /// byte-identical at every value, including 0.
  std::uint32_t workers = 0;

  /// Conservative-lookahead bound: every Post() issued from an event
  /// executing at time t must target `when >= t + lookahead`. This is
  /// the cross-shard seam's minimum latency (e.g. controller dispatch /
  /// completion-routing delay) and directly sets the rendezvous window
  /// width — shards run ahead `lookahead - 1` ns past the global next
  /// event before they must merge.
  SimTime lookahead = 1000;

  /// Fold every executed event into per-shard schedule fingerprints
  /// (Simulator::EnableFingerprint). Cheap; on by default so the
  /// determinism gates always have something to compare.
  bool fingerprint = true;
};

/// Sharded parallel discrete-event engine: N per-shard event loops with
/// conservative-lookahead synchronization.
///
/// Execution proceeds in rendezvous rounds. At each barrier the engine
/// (single-threaded) (1) delivers all cross-shard messages posted
/// during the previous window — sorted by (timestamp, sender shard,
/// sender sequence), so ties merge identically no matter which worker
/// produced them first — and (2) picks the next window
/// [W, W + lookahead) where W is the global earliest pending timestamp
/// (a non-committing wheel probe). Every shard then runs its local
/// events with timestamp < W + lookahead, in parallel. The lookahead
/// contract (`when >= t + lookahead` for every Post) guarantees any
/// message produced inside the window lands at or after the window
/// end, so delivery at the next barrier never back-dates an event.
///
/// Determinism: window boundaries are a pure function of committed
/// state, shards share nothing inside a window, and the merge order is
/// total — so the committed global schedule is byte-identical at any
/// worker count, including the workers=0 sequential reference. The
/// per-shard Simulator fingerprints (plus model observables) are the
/// checkable witness; gate 7 in scripts/check_perf.sh holds runs at
/// 1/2/4 workers to the workers=0 fingerprint.
class ShardedEngine {
 public:
  explicit ShardedEngine(const ShardedConfig& config);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  const ShardedConfig& config() const { return config_; }

  /// The shard's local event loop, for scheduling shard-local work.
  /// Setup code may use it freely before Run(); during execution only
  /// the event currently running on shard `id` may touch it.
  Simulator* shard(std::uint32_t id) { return &shards_[id]->sim; }

  /// Committed global time: every shard has executed all events below
  /// this (the end of the last completed window).
  SimTime Now() const { return committed_; }

  /// Cross-shard event: schedules `f` on shard `to` at absolute time
  /// `when`. Must be called either before Run()/RunUntil() (setup), or
  /// from an event currently executing on shard `from` with
  /// `when >= shard(from)->Now() + lookahead` — asserted. Messages are
  /// delivered at the next rendezvous, merged in (when, from, seq)
  /// order.
  template <typename F>
  void Post(std::uint32_t from, std::uint32_t to, SimTime when, F&& f) {
    assert(to < num_shards());
    Shard& src = *shards_[from];
    assert(!running_ || when >= src.sim.Now() + config_.lookahead);
    src.outbox.push_back(
        Message{when, from, to, src.next_msg_seq++, std::forward<F>(f)});
  }

  /// Runs rounds until every shard drains and no message is in flight.
  /// Returns the final committed time (max shard Now()).
  SimTime Run();

  /// Runs rounds covering timestamps <= deadline; later work stays
  /// queued. All shard clocks (and Now()) advance to `deadline`.
  SimTime RunUntil(SimTime deadline);

  /// Events executed across all shards.
  std::uint64_t events_executed() const;
  /// Combined committed-schedule fingerprint: per-shard Simulator
  /// fingerprints folded in shard order (worker-count invariant).
  std::uint64_t Fingerprint() const;
  /// Barrier rendezvous count (rounds) and cross-shard message count —
  /// the seam-traffic observability bench_parallel reports.
  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t messages_delivered() const { return messages_delivered_; }

 private:
  struct Message {
    SimTime when;
    std::uint32_t from;
    std::uint32_t to;
    std::uint64_t seq;  // per-sender counter: the deterministic tiebreak
    InplaceCallback cb;
  };

  /// One shard: its Simulator plus the outbox its events append
  /// cross-shard messages to. Only the worker running the shard's
  /// window touches it between barriers; the coordinator only between
  /// windows. Padded so neighbouring shards never share a cache line.
  struct alignas(64) Shard {
    Simulator sim;
    std::vector<Message> outbox;
    std::uint64_t next_msg_seq = 0;
  };

  /// Delivers all pending outbox messages in merge order. Returns the
  /// number delivered. Coordinator-only (between windows).
  std::size_t DeliverMessages();
  /// Earliest pending timestamp across shards, or kNoEvent when idle.
  SimTime GlobalMinPending() const;
  /// Runs one window [start, start + lookahead) on every shard, using
  /// the worker pool when configured.
  void RunWindow(SimTime window_end);
  void RunShardRange(std::uint32_t worker_id, SimTime window_end);

  static constexpr SimTime kNoEvent = ~SimTime{0};

  // --- Worker pool -----------------------------------------------------
  // Generation barrier on C++20 atomic wait/notify with a short spin
  // prefix: the coordinator publishes (window_end, generation), each
  // helper runs its static share of shards (shard s belongs to worker
  // s % workers), then acks. Static assignment keeps a shard's window
  // on one thread for cache locality; determinism never depends on it.
  void StartPool();
  void StopPool();
  void WorkerLoop(std::uint32_t worker_id);

  ShardedConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  SimTime committed_ = 0;
  bool running_ = false;
  std::uint64_t rounds_ = 0;
  std::uint64_t messages_delivered_ = 0;

  std::vector<std::thread> pool_;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::uint32_t> acks_{0};
  std::atomic<bool> stop_{false};
  SimTime pool_window_end_ = 0;  // published before the generation bump

  std::vector<Message> merge_buf_;  // reused between rounds
};

}  // namespace postblock::sim

#endif  // POSTBLOCK_SIM_SHARDED_ENGINE_H_
