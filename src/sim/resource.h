#ifndef POSTBLOCK_SIM_RESOURCE_H_
#define POSTBLOCK_SIM_RESOURCE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/types.h"
#include "sim/inplace_callback.h"
#include "sim/simulator.h"

namespace postblock::sim {

/// A FCFS-shared resource with `capacity` concurrent slots (default 1).
/// Models a flash channel bus, a LUN (serial command execution), a CPU
/// core, etc. Tracks utilization and queueing delay so benches can tell
/// *which* resource bound a workload (the paper's channel-bound vs
/// chip-bound distinction, Figure 1).
///
/// Grants are InplaceCallback (no heap traffic for pointer-sized
/// captures) and waiters live in recycled ring buffers. Each release
/// hands its slot to the next waiter via its own zero-delay grant event
/// — one event per handoff, exactly the heap-core event shape, so
/// releases at the same timestamp stay interleaved with unrelated
/// events scheduled between them. The carried waiter parks in a ready
/// ring so the grant event captures only `this` and stays inline.
class Resource {
 public:
  using Grant = InplaceCallback;

  Resource(Simulator* sim, std::string name, int capacity = 1);
  ~Resource();

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// Requests a slot. `on_grant` runs as soon as a slot is available —
  /// synchronously if one is free now, otherwise when a holder releases.
  void Acquire(Grant on_grant);

  /// Releases one held slot. If waiters are queued, the slot is carried
  /// directly to the next one (never marked free — strict FCFS) and
  /// granted by a zero-delay event scheduled by this release.
  void Release();

  /// Convenience: acquire, hold for `duration`, release, then run `done`.
  /// Per-call state lives in a pooled record, so the scheduling lambdas
  /// capture a single pointer and stay inline in the event queue.
  void UseFor(SimTime duration, InplaceCallback done);

  int in_use() const { return in_use_; }
  std::size_t queue_length() const { return waiters_.size(); }
  const std::string& name() const { return name_; }

  /// Total slot-nanoseconds the resource was held.
  std::uint64_t busy_ns() const;
  /// Queueing delay distribution (time between Acquire and grant).
  const Histogram& wait_hist() const { return wait_hist_; }
  /// Fraction of [0, Now()] the resource was busy (capacity-weighted).
  double Utilization() const;

 private:
  struct Waiter {
    Grant grant;
    SimTime enqueued_at = 0;
  };

  /// Recycled FIFO of waiters: a power-of-two ring over a vector, so the
  /// contended steady state never touches the allocator (std::deque
  /// churns blocks as elements cycle through).
  class WaiterRing {
   public:
    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }
    void push_back(Waiter w);
    Waiter pop_front();

   private:
    void Grow();
    std::vector<Waiter> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
  };

  struct UseOp {
    Resource* res = nullptr;
    SimTime duration = 0;
    InplaceCallback done;
  };

  void GrantTo(Waiter w);
  void GrantNextReady();
  UseOp* AcquireUseOp();
  void ReleaseUseOp(UseOp* op);

  Simulator* sim_;
  std::string name_;
  int capacity_;
  int in_use_ = 0;
  WaiterRing waiters_;
  /// Waiters whose slot has been carried over by Release(), each
  /// awaiting its own grant event. Granted strictly in release order
  /// (one event per entry, scheduled by the release that carried it).
  WaiterRing ready_;

  std::vector<std::unique_ptr<UseOp>> use_ops_;  // owns every UseOp
  std::vector<UseOp*> use_op_free_;              // recycled records

  mutable std::uint64_t busy_ns_ = 0;
  mutable SimTime busy_since_ = 0;  // last time in_use_ changed
  Histogram wait_hist_;

  void AccrueBusy() const;
};

}  // namespace postblock::sim

#endif  // POSTBLOCK_SIM_RESOURCE_H_
