#ifndef POSTBLOCK_SIM_RESOURCE_H_
#define POSTBLOCK_SIM_RESOURCE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "common/histogram.h"
#include "common/types.h"
#include "sim/simulator.h"

namespace postblock::sim {

/// A FCFS-shared resource with `capacity` concurrent slots (default 1).
/// Models a flash channel bus, a LUN (serial command execution), a CPU
/// core, etc. Tracks utilization and queueing delay so benches can tell
/// *which* resource bound a workload (the paper's channel-bound vs
/// chip-bound distinction, Figure 1).
class Resource {
 public:
  using Grant = std::function<void()>;

  Resource(Simulator* sim, std::string name, int capacity = 1);

  /// Requests a slot. `on_grant` runs as soon as a slot is available —
  /// synchronously if one is free now, otherwise when a holder releases.
  void Acquire(Grant on_grant);

  /// Releases one held slot. Hands the slot to the next waiter via a
  /// zero-delay event (avoids unbounded recursion on long queues).
  void Release();

  /// Convenience: acquire, hold for `duration`, release, then run `done`.
  void UseFor(SimTime duration, std::function<void()> done);

  int in_use() const { return in_use_; }
  std::size_t queue_length() const { return waiters_.size(); }
  const std::string& name() const { return name_; }

  /// Total slot-nanoseconds the resource was held.
  std::uint64_t busy_ns() const;
  /// Queueing delay distribution (time between Acquire and grant).
  const Histogram& wait_hist() const { return wait_hist_; }
  /// Fraction of [0, Now()] the resource was busy (capacity-weighted).
  double Utilization() const;

 private:
  struct Waiter {
    Grant grant;
    SimTime enqueued_at;
  };

  void GrantTo(Waiter w);

  Simulator* sim_;
  std::string name_;
  int capacity_;
  int in_use_ = 0;
  std::deque<Waiter> waiters_;

  mutable std::uint64_t busy_ns_ = 0;
  mutable SimTime busy_since_ = 0;  // last time in_use_ changed
  Histogram wait_hist_;

  void AccrueBusy() const;
};

}  // namespace postblock::sim

#endif  // POSTBLOCK_SIM_RESOURCE_H_
