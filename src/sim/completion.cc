#include "sim/completion.h"

#include <type_traits>
#include <utility>

namespace postblock::sim {

void Completion::Complete(Simulator* sim, Status status) {
  done_ = true;
  status_ = std::move(status);
  completed_at_ = sim->Now();
}

std::function<void(Status)> Completion::AsCallback(Simulator* sim) {
  auto cb = [this, sim](Status s) { Complete(sim, std::move(s)); };
  // The device-facing `void(Status)` convention still uses
  // std::function; keep this adapter inside libstdc++'s 16-byte SSO so
  // the completion path stays allocation-free like the event core.
  static_assert(sizeof(cb) <= 2 * sizeof(void*) &&
                std::is_trivially_copyable_v<decltype(cb)>);
  return cb;
}

bool WaitFor(Simulator* sim, const Completion& c) {
  return sim->RunUntilPredicate([&c] { return c.done(); });
}

bool WaitFor(Simulator* sim, const CountdownLatch& l) {
  return sim->RunUntilPredicate([&l] { return l.done(); });
}

}  // namespace postblock::sim
