#include "sim/completion.h"

#include <utility>

namespace postblock::sim {

void Completion::Complete(Simulator* sim, Status status) {
  done_ = true;
  status_ = std::move(status);
  completed_at_ = sim->Now();
}

std::function<void(Status)> Completion::AsCallback(Simulator* sim) {
  return [this, sim](Status s) { Complete(sim, std::move(s)); };
}

bool WaitFor(Simulator* sim, const Completion& c) {
  return sim->RunUntilPredicate([&c] { return c.done(); });
}

bool WaitFor(Simulator* sim, const CountdownLatch& l) {
  return sim->RunUntilPredicate([&l] { return l.done(); });
}

}  // namespace postblock::sim
