#include "sim/parallel_runner.h"

#include <atomic>
#include <cstdio>
#include <exception>
#include <thread>

#include "common/json.h"

namespace postblock::sim {

std::vector<SweepResult> ParallelRunner::RunAll(
    std::vector<SweepJob> jobs) const {
  std::vector<SweepResult> results(jobs.size());
  const auto run_one = [&](std::size_t i) {
    SweepResult r;
    try {
      r = jobs[i].fn();
      r.name = jobs[i].name;
    } catch (const std::exception& e) {
      r = SweepResult{};
      r.name = jobs[i].name;
      r.ok = false;
      r.error = e.what();
    } catch (...) {
      r = SweepResult{};
      r.name = jobs[i].name;
      r.ok = false;
      r.error = "unknown exception";
    }
    results[i] = std::move(r);  // distinct slot per job: no lock needed
  };

  const std::uint32_t n =
      threads_ <= 1
          ? 1
          : std::min<std::uint32_t>(
                threads_, static_cast<std::uint32_t>(jobs.size()));
  if (n <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) run_one(i);
    return results;
  }

  std::atomic<std::size_t> cursor{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t i =
          cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      run_one(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(n - 1);
  for (std::uint32_t t = 1; t < n; ++t) pool.emplace_back(worker);
  worker();  // the calling thread pulls jobs too
  for (auto& t : pool) t.join();
  return results;
}

std::string ParallelRunner::SweepReportJson(
    const std::vector<SweepResult>& results,
    const std::string& meta_fields) {
  std::string out = "{\n  \"meta\": {";
  out += meta_fields;
  out += "},\n  \"runs\": [\n";
  char buf[64];
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    out += "    {\"name\": \"";
    out += JsonEscaped(r.name);
    out += r.ok ? "\", \"ok\": true" : "\", \"ok\": false";
    if (!r.ok) {
      out += ", \"error\": \"";
      out += JsonEscaped(r.error);
      out += "\"";
    }
    for (const auto& [key, value] : r.metrics) {
      out += ", \"";
      out += JsonEscaped(key);
      std::snprintf(buf, sizeof(buf), "\": %.17g", value);
      out += buf;
    }
    if (!r.note.empty()) {
      out += ", \"note\": \"";
      out += JsonEscaped(r.note);
      out += "\"";
    }
    out += i + 1 < results.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace postblock::sim
