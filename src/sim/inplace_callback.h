#ifndef POSTBLOCK_SIM_INPLACE_CALLBACK_H_
#define POSTBLOCK_SIM_INPLACE_CALLBACK_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace postblock::sim {

/// Fixed-size chunk recycler backing the rare oversized-capture path of
/// InplaceCallback. The simulator is single-threaded, so one slab per
/// thread doubles as "per simulator"; chunks are returned to a free list
/// instead of the heap, making even the fallback path allocation-free in
/// steady state. Captures larger than kChunkBytes (none in this repo)
/// fall through to plain operator new.
class CallbackSlab {
 public:
  static constexpr std::size_t kChunkBytes = 256;
  static constexpr std::size_t kMaxFree = 1024;  // cap on cached chunks

  struct Stats {
    std::uint64_t chunk_allocs = 0;   // chunks obtained from the heap
    std::uint64_t chunk_reuses = 0;   // chunks served from the free list
    std::uint64_t oversize_allocs = 0;  // captures too big even for a chunk
  };

  static void* Allocate(std::size_t bytes) {
    Slab& s = Instance();
    if (bytes <= kChunkBytes) {
      if (!s.free_list.empty()) {
        void* p = s.free_list.back();
        s.free_list.pop_back();
        ++s.stats.chunk_reuses;
        return p;
      }
      ++s.stats.chunk_allocs;
      return ::operator new(kChunkBytes);
    }
    ++s.stats.oversize_allocs;
    return ::operator new(bytes);
  }

  static void Deallocate(void* p, std::size_t bytes) {
    Slab& s = Instance();
    if (bytes <= kChunkBytes && s.free_list.size() < kMaxFree) {
      s.free_list.push_back(p);
      return;
    }
    ::operator delete(p);
  }

  static const Stats& stats() { return Instance().stats; }
  static void ResetStats() { Instance().stats = Stats{}; }

 private:
  struct Slab {
    std::vector<void*> free_list;
    Stats stats;
    ~Slab() {
      for (void* p : free_list) ::operator delete(p);
    }
  };
  static Slab& Instance() {
    thread_local Slab slab;
    return slab;
  }
};

/// Move-only `void()` callable with inline storage for small captures —
/// the event queue's replacement for std::function<void()>. Callables
/// whose captures fit kInlineBytes live inside the object (no heap
/// traffic per event); larger ones are boxed in a CallbackSlab chunk.
/// Hot-path lambdas should capture at most a few pointers/words; guard
/// them with `static_assert(InplaceCallback::fits<decltype(cb)>())`.
class InplaceCallback {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  template <typename F>
  static constexpr bool fits() {
    using D = std::decay_t<F>;
    return sizeof(D) <= kInlineBytes &&
           alignof(D) <= alignof(std::max_align_t);
  }

  InplaceCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InplaceCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (fits<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      void* p = CallbackSlab::Allocate(sizeof(D));
      ::new (p) D(std::forward<F>(f));
      ::new (static_cast<void*>(buf_)) void*(p);
      ops_ = &kBoxedOps<D>;
    }
  }

  InplaceCallback(InplaceCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      Relocate(other);
      other.ops_ = nullptr;
    }
  }

  InplaceCallback& operator=(InplaceCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        Relocate(other);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InplaceCallback(const InplaceCallback&) = delete;
  InplaceCallback& operator=(const InplaceCallback&) = delete;

  ~InplaceCallback() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// True when the callable lives in the inline buffer (no slab chunk).
  bool stored_inline() const { return ops_ != nullptr && ops_->is_inline; }

  void operator()() { ops_->invoke(buf_); }

 private:
  struct Ops {
    void (*invoke)(void* self);
    void (*relocate)(void* dst, void* src);  // move-construct + destroy src
    void (*destroy)(void* self);
    bool is_inline;
    /// Relocatable by memcpy of the buffer: trivially copyable inline
    /// captures, and every boxed callable (only the box pointer moves).
    bool trivial_relocate;
  };

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// Moves the callable out of `other`'s buffer. Hot-path captures are
  /// plain pointer/integer bundles, so a fixed-size memcpy (a couple of
  /// vector moves) usually replaces the indirect relocate call — the
  /// timing wheel relocates each entry on every cascade, so this is on
  /// the per-event path.
  void Relocate(InplaceCallback& other) {
    if (ops_->trivial_relocate) {
      std::memcpy(buf_, other.buf_, kInlineBytes);
    } else {
      ops_->relocate(buf_, other.buf_);
    }
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      // invoke
      [](void* self) { (*std::launder(reinterpret_cast<D*>(self)))(); },
      // relocate
      [](void* dst, void* src) {
        D* s = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      // destroy
      [](void* self) { std::launder(reinterpret_cast<D*>(self))->~D(); },
      /*is_inline=*/true,
      /*trivial_relocate=*/std::is_trivially_copyable_v<D>,
  };

  template <typename D>
  static constexpr Ops kBoxedOps = {
      // invoke
      [](void* self) {
        (**std::launder(reinterpret_cast<D**>(self)))();
      },
      // relocate: the box pointer moves; the boxed object stays put.
      [](void* dst, void* src) {
        ::new (dst) void*(*std::launder(reinterpret_cast<void**>(src)));
      },
      // destroy
      [](void* self) {
        D* p = *std::launder(reinterpret_cast<D**>(self));
        p->~D();
        CallbackSlab::Deallocate(p, sizeof(D));
      },
      /*is_inline=*/false,
      /*trivial_relocate=*/true,
  };

  const Ops* ops_ = nullptr;
  /// Zero-initialized so the fixed-size relocation memcpy never reads
  /// indeterminate bytes; overlapping stores are elided by the compiler
  /// when a callable is placement-newed over the buffer.
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes] = {};
};

}  // namespace postblock::sim

#endif  // POSTBLOCK_SIM_INPLACE_CALLBACK_H_
