#ifndef POSTBLOCK_CORE_HYBRID_STORE_H_
#define POSTBLOCK_CORE_HYBRID_STORE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "blocklayer/block_device.h"
#include "common/histogram.h"
#include "common/stats.h"
#include "common/status.h"
#include "core/pcm_log.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "trace/tracer.h"

namespace postblock::core {

/// The paper's Section 3 storage architecture in one object: keep
/// synchronous and asynchronous persistence patterns separate (Mohan's
/// suggestion, ref [16]).
///
///   - SyncPersist(record): the commit-critical path. In *vision* mode
///     it is a PCM log append over the memory bus (hundreds of ns); in
///     *classic* mode it is a 4 KiB log-block write + flush through the
///     block device interface (hundreds of us) — records are padded to a
///     whole block because the interface has no smaller unit.
///   - SubmitAsync(request): lazy writes, prefetching, reads — always
///     the block-granular device path.
///
/// The async class is a host::HostInterface: typed commands flow to the
/// data path with the store's stream classification applied, so a
/// multi-queue block layer with stream_queues pins commit-critical WAL
/// traffic (wal_stream) and lazy traffic (async_stream) to different
/// software queues.
class HybridStore : public host::HostInterface {
 public:
  /// Vision wiring: sync -> PCM log, async -> `data_path`.
  HybridStore(sim::Simulator* sim, blocklayer::BlockDevice* data_path,
              PcmLog* pcm_log);

  /// Classic wiring: sync -> a reserved LBA region of `data_path`
  /// (round-robin log blocks, flush after every record), async -> the
  /// same device.
  HybridStore(sim::Simulator* sim, blocklayer::BlockDevice* data_path,
              Lba log_region_start, std::uint64_t log_region_blocks);

  HybridStore(const HybridStore&) = delete;
  HybridStore& operator=(const HybridStore&) = delete;

  bool vision_mode() const { return pcm_log_ != nullptr; }

  /// Durably persists one record; callback fires when it would survive
  /// power loss. `ctx` is the caller's trace identity (a WAL commit,
  /// say); with a tracer attached the whole persist — including the
  /// block-device write+flush of classic mode — becomes one kApp span.
  void SyncPersist(std::vector<std::uint8_t> record,
                   std::function<void(Status)> cb, trace::Ctx ctx = {});

  /// Attaches latency attribution: sync persists are recorded on a
  /// "sync-persist" track, and classic-mode log IOs carry the persist's
  /// span down the block stack.
  void set_tracer(trace::Tracer* tracer);

  /// Forwards to the data path (applying async_stream when the request
  /// is unclassified).
  void SubmitAsync(blocklayer::IoRequest request);

  /// host::HostInterface — block-expressible commands take the async
  /// path (with stream classification); hints and extended kinds pass
  /// through to the data path.
  void Execute(host::Command cmd) override;
  bool Supports(host::CommandKind kind) const override {
    return data_path_->Supports(kind);
  }
  /// Capability discovery: the data path's caps, plus the one thing
  /// this layer adds that no device below can claim — a synchronous
  /// byte-granular PCM persistence path (vision mode).
  host::DeviceCaps Caps() const override {
    host::DeviceCaps caps = data_path_->Caps();
    caps.pcm_sync = vision_mode();
    return caps;
  }
  void SetMigrationHandler(host::MigrationHandler handler) override {
    data_path_->SetMigrationHandler(std::move(handler));
  }

  /// Stream classification for queue pinning: classic-mode SyncPersist
  /// log write+flush carry `wal_stream`; unclassified async requests
  /// carry `async_stream`. Both default to 0 (off — no pinning).
  void set_streams(std::uint8_t wal_stream, std::uint8_t async_stream) {
    wal_stream_ = wal_stream;
    async_stream_ = async_stream;
  }

  /// All records whose SyncPersist completed (i.e. that would survive a
  /// crash), in persist order. Vision mode scans the PCM log region;
  /// classic mode reflects the log blocks on the device.
  std::vector<std::vector<std::uint8_t>> DurableRecords() const;

  /// Recovery's view: re-reads the classic log region through the data
  /// path and returns the longest intact prefix of durable records. A
  /// log block that reads back failed (uncorrectable media, even after
  /// every retry) or stale (token mismatch — overwritten by a wrapped
  /// log head) is a *torn point*: that record and everything after it
  /// are dropped, i.e. the log truncates at the first bad record
  /// instead of replaying past a hole. Vision mode completes with the
  /// PCM log as-is (the memory bus path has no flash error model).
  void RecoverRecords(
      std::function<void(std::vector<std::vector<std::uint8_t>>)> cb);

  /// Resets the log after a checkpoint. Durable when the callback fires.
  void TruncateLog(std::function<void(Status)> cb);

  blocklayer::BlockDevice* data_path() { return data_path_; }
  PcmLog* pcm_log() { return pcm_log_; }

  const Histogram& sync_latency() const { return sync_latency_; }
  const Counters& counters() const { return counters_; }

 private:
  sim::Simulator* sim_;
  blocklayer::BlockDevice* data_path_;
  PcmLog* pcm_log_ = nullptr;

  // Stream classification (0 = unclassified, no queue pinning).
  std::uint8_t wal_stream_ = 0;
  std::uint8_t async_stream_ = 0;

  // Classic-mode log region state.
  Lba log_region_start_ = 0;
  std::uint64_t log_region_blocks_ = 0;
  std::uint64_t log_head_block_ = 0;
  std::uint64_t next_log_token_ = 1;
  /// Classic mode: the records whose log-block write + flush completed.
  /// (Models reading the log region back; the device only stores tokens.)
  std::vector<std::vector<std::uint8_t>> classic_durable_;
  /// Where each classic_durable_ record landed (parallel vector):
  /// RecoverRecords re-reads these to verify the log is still intact.
  struct ClassicLogSlot {
    Lba lba = 0;
    std::uint64_t token = 0;
  };
  std::vector<ClassicLogSlot> classic_slots_;

  Histogram sync_latency_;
  Counters counters_;

  trace::Tracer* tracer_ = nullptr;
  std::uint32_t track_ = 0;  // "sync-persist" (host pid)
};

}  // namespace postblock::core

#endif  // POSTBLOCK_CORE_HYBRID_STORE_H_
