#include "core/atomic_write.h"

#include <memory>

namespace postblock::core {

AtomicWriter::AtomicWriter(sim::Simulator* sim, ftl::PageFtl* ftl)
    : sim_(sim), ftl_(ftl) {}

void AtomicWriter::WriteAtomic(
    std::vector<std::pair<Lba, std::uint64_t>> pages,
    std::function<void(Status)> cb) {
  const SimTime start = sim_->Now();
  counters_.Increment("atomic_writes");
  counters_.Add("pages", pages.size());
  ftl_->WriteAtomic(std::move(pages),
                    [this, start, cb = std::move(cb)](Status st) {
                      latency_.Record(sim_->Now() - start);
                      cb(std::move(st));
                    });
}

JournaledAtomicWriter::JournaledAtomicWriter(sim::Simulator* sim,
                                             blocklayer::BlockDevice* dev,
                                             Lba journal_start,
                                             std::uint64_t journal_blocks)
    : sim_(sim),
      dev_(dev),
      journal_start_(journal_start),
      journal_blocks_(journal_blocks) {}

void JournaledAtomicWriter::WriteBatch(
    std::vector<std::pair<Lba, std::uint64_t>> pages,
    std::function<void(Status)> done) {
  auto tracker = std::make_shared<std::pair<std::size_t, Status>>(
      pages.size(), Status::Ok());
  for (const auto& [lba, token] : pages) {
    blocklayer::IoRequest w;
    w.op = blocklayer::IoOp::kWrite;
    w.lba = lba;
    w.nblocks = 1;
    w.tokens = {token};
    w.on_complete = [tracker, done](const blocklayer::IoResult& r) {
      if (!r.status.ok() && tracker->second.ok()) {
        tracker->second = r.status;
      }
      if (--tracker->first == 0) done(tracker->second);
    };
    dev_->Submit(std::move(w));
  }
}

void JournaledAtomicWriter::Flush(std::function<void(Status)> done) {
  blocklayer::IoRequest f;
  f.op = blocklayer::IoOp::kFlush;
  f.nblocks = 1;
  f.on_complete = [done = std::move(done)](const blocklayer::IoResult& r) {
    done(r.status);
  };
  dev_->Submit(std::move(f));
}

void JournaledAtomicWriter::WriteAtomic(
    std::vector<std::pair<Lba, std::uint64_t>> pages,
    std::function<void(Status)> cb) {
  const SimTime start = sim_->Now();
  counters_.Increment("atomic_writes");
  counters_.Add("pages", pages.size());

  // Phase 1: journal copies (descriptor + data + commit record).
  std::vector<std::pair<Lba, std::uint64_t>> journal;
  journal.reserve(pages.size() + 2);
  auto jslot = [this]() {
    return journal_start_ + (journal_head_++ % journal_blocks_);
  };
  journal.emplace_back(jslot(), /*descriptor token*/ 0xDE5C);
  for (const auto& p : pages) journal.emplace_back(jslot(), p.second);
  journal.emplace_back(jslot(), /*commit token*/ 0xC0117);
  counters_.Add("journal_writes", journal.size());

  auto home = std::make_shared<std::vector<std::pair<Lba, std::uint64_t>>>(
      std::move(pages));
  WriteBatch(std::move(journal), [this, home, start,
                                  cb = std::move(cb)](Status st) mutable {
    if (!st.ok()) {
      latency_.Record(sim_->Now() - start);
      cb(std::move(st));
      return;
    }
    Flush([this, home, start, cb = std::move(cb)](Status st2) mutable {
      if (!st2.ok()) {
        latency_.Record(sim_->Now() - start);
        cb(std::move(st2));
        return;
      }
      // Phase 2: home-location writes, then the final barrier.
      counters_.Add("home_writes", home->size());
      WriteBatch(std::move(*home),
                 [this, start, cb = std::move(cb)](Status st3) mutable {
                   if (!st3.ok()) {
                     latency_.Record(sim_->Now() - start);
                     cb(std::move(st3));
                     return;
                   }
                   Flush([this, start, cb = std::move(cb)](Status st4) {
                     latency_.Record(sim_->Now() - start);
                     cb(std::move(st4));
                   });
                 });
    });
  });
}

}  // namespace postblock::core
