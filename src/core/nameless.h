#ifndef POSTBLOCK_CORE_NAMELESS_H_
#define POSTBLOCK_CORE_NAMELESS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "common/stats.h"
#include "common/status.h"
#include "common/statusor.h"
#include "ftl/page_ftl.h"
#include "sim/simulator.h"

namespace postblock::core {

/// Nameless writes (the paper calls them "interesting" for space
/// allocation once extent-based allocation dies): the host writes data
/// *without naming an address*; the device picks the location and
/// returns its name. The host stores names instead of keeping its own
/// allocation map, and — because device and host are now communicating
/// peers — the device *calls back* when GC or wear leveling moves a
/// page, so the host can update its name.
class NamelessStore {
 public:
  /// An opaque device-issued name (here: the flattened physical page
  /// address at grant time).
  using Name = std::uint64_t;

  /// Fired when the device relocates a named page: (old name, new name).
  using MigrationHandler = std::function<void(Name, Name)>;

  explicit NamelessStore(sim::Simulator* sim, ftl::PageFtl* ftl);

  NamelessStore(const NamelessStore&) = delete;
  NamelessStore& operator=(const NamelessStore&) = delete;

  /// Writes one page anywhere; the callback delivers its name.
  void Write(std::uint64_t token, std::function<void(StatusOr<Name>)> cb);

  /// Reads a page by name.
  void Read(Name name, std::function<void(StatusOr<std::uint64_t>)> cb);

  /// Releases a named page (the trim analogue).
  void Free(Name name, std::function<void(Status)> cb);

  void SetMigrationHandler(MigrationHandler handler) {
    handler_ = std::move(handler);
  }

  /// Pages currently named.
  std::size_t live() const { return name_to_slot_.size(); }
  const Counters& counters() const { return counters_; }

 private:
  void OnMigration(Lba lba, flash::Ppa from, flash::Ppa to);

  sim::Simulator* sim_;
  ftl::PageFtl* ftl_;
  /// Internal slot pool: the device-side bookkeeping a nameless FTL
  /// still needs (one slot per live page, not per LBA).
  std::deque<Lba> free_slots_;
  std::unordered_map<Name, Lba> name_to_slot_;
  std::unordered_map<Lba, Name> slot_to_name_;
  MigrationHandler handler_;
  Counters counters_;
};

}  // namespace postblock::core

#endif  // POSTBLOCK_CORE_NAMELESS_H_
