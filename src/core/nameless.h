#ifndef POSTBLOCK_CORE_NAMELESS_H_
#define POSTBLOCK_CORE_NAMELESS_H_

#include <cstdint>
#include <functional>
#include <unordered_set>

#include "common/stats.h"
#include "common/status.h"
#include "common/statusor.h"
#include "host/command.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace postblock::core {

/// Nameless writes (the paper calls them "interesting" for space
/// allocation once extent-based allocation dies): the host writes data
/// *without naming an address*; the device picks the location and
/// returns its name. The host stores names instead of keeping its own
/// allocation map, and — because device and host are now communicating
/// peers — the device *calls back* when GC or wear leveling moves a
/// page, so the host can update its name.
///
/// This is a pure host-side client of the typed command API: every
/// operation is a host::Command through HostInterface::Execute, so the
/// same store runs over a page-map device (which emulates names over
/// hidden LBA slots) or a vision-append device (where a name *is* the
/// physical address) — and over any layer stack in between, since the
/// layers pass the nameless vocabulary through. Device-side slot or
/// append bookkeeping is the device's business, not this class's.
class NamelessStore {
 public:
  /// An opaque device-issued name.
  using Name = std::uint64_t;

  /// Fired when the device relocates a named page: (old name, new name).
  using MigrationHandler = std::function<void(Name, Name)>;

  /// `dev` is any stack speaking the typed API. The store probes
  /// capabilities once (Caps().nameless) instead of reading device
  /// configs; on a stack without nameless support every operation
  /// completes with the stack's typed Unimplemented.
  NamelessStore(sim::Simulator* sim, host::HostInterface* dev);

  NamelessStore(const NamelessStore&) = delete;
  NamelessStore& operator=(const NamelessStore&) = delete;

  /// Writes one page anywhere; the callback delivers its name. `ctx`
  /// threads the caller's trace identity into the command.
  void Write(std::uint64_t token, std::function<void(StatusOr<Name>)> cb,
             trace::Ctx ctx = {});

  /// Reads a page by name.
  void Read(Name name, std::function<void(StatusOr<std::uint64_t>)> cb,
            trace::Ctx ctx = {});

  /// Releases a named page (the trim analogue).
  void Free(Name name, std::function<void(Status)> cb,
            trace::Ctx ctx = {});

  void SetMigrationHandler(MigrationHandler handler) {
    handler_ = std::move(handler);
  }

  /// Did the capability probe find a device that speaks nameless?
  bool device_supported() const { return supported_; }

  /// Pages currently named.
  std::size_t live() const { return names_.size(); }
  const Counters& counters() const { return counters_; }

 private:
  void OnMigration(Name old_name, Name new_name);

  sim::Simulator* sim_;
  host::HostInterface* dev_;
  bool supported_ = false;
  /// The host's view: the set of names it holds. (What the names *mean*
  /// physically is the device's concern.)
  std::unordered_set<Name> names_;
  MigrationHandler handler_;
  Counters counters_;
};

}  // namespace postblock::core

#endif  // POSTBLOCK_CORE_NAMELESS_H_
