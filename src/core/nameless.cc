#include "core/nameless.h"

#include <utility>

namespace postblock::core {

NamelessStore::NamelessStore(sim::Simulator* sim, ftl::PageFtl* ftl)
    : sim_(sim), ftl_(ftl) {
  for (Lba slot = 0; slot < ftl_->user_pages(); ++slot) {
    free_slots_.push_back(slot);
  }
  ftl_->SetMigrationListener(
      [this](Lba lba, flash::Ppa from, flash::Ppa to) {
        OnMigration(lba, from, to);
      });
}

void NamelessStore::Write(std::uint64_t token,
                          std::function<void(StatusOr<Name>)> cb) {
  if (free_slots_.empty()) {
    sim_->Schedule(0, [cb = std::move(cb)]() {
      cb(Status::ResourceExhausted("nameless store full"));
    });
    return;
  }
  const Lba slot = free_slots_.front();
  free_slots_.pop_front();
  counters_.Increment("writes");
  ftl_->Write(slot, token, [this, slot, cb = std::move(cb)](Status st) {
    if (!st.ok()) {
      free_slots_.push_back(slot);
      cb(std::move(st));
      return;
    }
    const auto ppa = ftl_->Locate(slot);
    if (!ppa.has_value()) {
      free_slots_.push_back(slot);
      cb(Status::Internal("nameless write left no mapping"));
      return;
    }
    const Name name =
        ppa->Flatten(ftl_->controller()->config().geometry);
    name_to_slot_[name] = slot;
    slot_to_name_[slot] = name;
    cb(name);
  });
}

void NamelessStore::Read(Name name,
                         std::function<void(StatusOr<std::uint64_t>)> cb) {
  auto it = name_to_slot_.find(name);
  if (it == name_to_slot_.end()) {
    sim_->Schedule(0, [cb = std::move(cb)]() {
      cb(Status::NotFound("unknown name"));
    });
    return;
  }
  counters_.Increment("reads");
  ftl_->Read(it->second, std::move(cb));
}

void NamelessStore::Free(Name name, std::function<void(Status)> cb) {
  auto it = name_to_slot_.find(name);
  if (it == name_to_slot_.end()) {
    sim_->Schedule(0, [cb = std::move(cb)]() {
      cb(Status::NotFound("unknown name"));
    });
    return;
  }
  const Lba slot = it->second;
  name_to_slot_.erase(it);
  slot_to_name_.erase(slot);
  counters_.Increment("frees");
  ftl_->Trim(slot, [this, slot, cb = std::move(cb)](Status st) {
    free_slots_.push_back(slot);
    cb(std::move(st));
  });
}

void NamelessStore::OnMigration(Lba lba, flash::Ppa from, flash::Ppa to) {
  auto it = slot_to_name_.find(lba);
  if (it == slot_to_name_.end()) return;
  const auto& geometry = ftl_->controller()->config().geometry;
  const Name old_name = from.Flatten(geometry);
  const Name new_name = to.Flatten(geometry);
  if (it->second != old_name) return;  // stale notification
  counters_.Increment("migrations");
  it->second = new_name;
  name_to_slot_.erase(old_name);
  name_to_slot_[new_name] = lba;
  if (handler_) handler_(old_name, new_name);
}

}  // namespace postblock::core
