#include "core/nameless.h"

#include <utility>

namespace postblock::core {

NamelessStore::NamelessStore(sim::Simulator* sim, host::HostInterface* dev)
    : sim_(sim), dev_(dev), supported_(dev->Caps().nameless) {
  dev_->SetMigrationHandler([this](Name old_name, Name new_name) {
    OnMigration(old_name, new_name);
  });
}

void NamelessStore::Write(std::uint64_t token,
                          std::function<void(StatusOr<Name>)> cb,
                          trace::Ctx ctx) {
  counters_.Increment("writes");
  host::Command cmd = host::Command::NamelessWrite(
      token,
      blocklayer::IoCallback(
          [this, cb = std::move(cb)](const blocklayer::IoResult& res) {
            if (!res.status.ok()) {
              cb(res.status);
              return;
            }
            if (res.tokens.empty()) {
              cb(Status::Internal("nameless write returned no name"));
              return;
            }
            names_.insert(res.tokens[0]);
            cb(res.tokens[0]);
          }));
  cmd.span = ctx.span;
  dev_->Execute(std::move(cmd));
}

void NamelessStore::Read(Name name,
                         std::function<void(StatusOr<std::uint64_t>)> cb,
                         trace::Ctx ctx) {
  if (names_.find(name) == names_.end()) {
    sim_->Schedule(0, [cb = std::move(cb)]() {
      cb(Status::NotFound("unknown name"));
    });
    return;
  }
  counters_.Increment("reads");
  host::Command cmd = host::Command::NamelessRead(
      name, blocklayer::IoCallback(
                [cb = std::move(cb)](const blocklayer::IoResult& res) {
                  if (!res.status.ok()) {
                    cb(res.status);
                    return;
                  }
                  cb(res.tokens.empty() ? 0 : res.tokens[0]);
                }));
  cmd.span = ctx.span;
  dev_->Execute(std::move(cmd));
}

void NamelessStore::Free(Name name, std::function<void(Status)> cb,
                         trace::Ctx ctx) {
  auto it = names_.find(name);
  if (it == names_.end()) {
    sim_->Schedule(0, [cb = std::move(cb)]() {
      cb(Status::NotFound("unknown name"));
    });
    return;
  }
  names_.erase(it);
  counters_.Increment("frees");
  host::Command cmd = host::Command::NamelessFree(
      name, blocklayer::IoCallback(
                [cb = std::move(cb)](const blocklayer::IoResult& res) {
                  cb(res.status);
                }));
  cmd.span = ctx.span;
  dev_->Execute(std::move(cmd));
}

void NamelessStore::OnMigration(Name old_name, Name new_name) {
  if (names_.erase(old_name) == 0) return;  // not ours / stale
  names_.insert(new_name);
  counters_.Increment("migrations");
  if (handler_) handler_(old_name, new_name);
}

}  // namespace postblock::core
