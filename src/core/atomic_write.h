#ifndef POSTBLOCK_CORE_ATOMIC_WRITE_H_
#define POSTBLOCK_CORE_ATOMIC_WRITE_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "blocklayer/block_device.h"
#include "common/histogram.h"
#include "common/stats.h"
#include "common/status.h"
#include "ftl/page_ftl.h"
#include "sim/simulator.h"

namespace postblock::core {

/// Native multi-page atomic writes — the "new commands at the driver's
/// interface" the paper cites from Ouyang et al. [17]. The FTL already
/// does copy-on-write, so atomicity costs one extra commit-marker page;
/// mappings flip all-or-nothing, and recovery discards uncommitted
/// groups.
class AtomicWriter {
 public:
  AtomicWriter(sim::Simulator* sim, ftl::PageFtl* ftl);

  void WriteAtomic(std::vector<std::pair<Lba, std::uint64_t>> pages,
                   std::function<void(Status)> cb);

  const Histogram& latency() const { return latency_; }
  const Counters& counters() const { return counters_; }

 private:
  sim::Simulator* sim_;
  ftl::PageFtl* ftl_;
  Histogram latency_;
  Counters counters_;
};

/// What a database must do *without* device atomic writes: a double-
/// write journal over the plain block interface (InnoDB-style). Every
/// atomic group costs 2n+2 block writes and two flush barriers.
class JournaledAtomicWriter {
 public:
  /// `journal_start`/`journal_blocks` reserve an LBA region on `dev`.
  JournaledAtomicWriter(sim::Simulator* sim, blocklayer::BlockDevice* dev,
                        Lba journal_start, std::uint64_t journal_blocks);

  void WriteAtomic(std::vector<std::pair<Lba, std::uint64_t>> pages,
                   std::function<void(Status)> cb);

  const Histogram& latency() const { return latency_; }
  const Counters& counters() const { return counters_; }

 private:
  void WriteBatch(std::vector<std::pair<Lba, std::uint64_t>> pages,
                  std::function<void(Status)> done);
  void Flush(std::function<void(Status)> done);

  sim::Simulator* sim_;
  blocklayer::BlockDevice* dev_;
  Lba journal_start_;
  std::uint64_t journal_blocks_;
  std::uint64_t journal_head_ = 0;
  Histogram latency_;
  Counters counters_;
};

}  // namespace postblock::core

#endif  // POSTBLOCK_CORE_ATOMIC_WRITE_H_
