#include "core/hybrid_store.h"

#include <memory>
#include <utility>

namespace postblock::core {

HybridStore::HybridStore(sim::Simulator* sim,
                         blocklayer::BlockDevice* data_path, PcmLog* pcm_log)
    : sim_(sim), data_path_(data_path), pcm_log_(pcm_log) {}

HybridStore::HybridStore(sim::Simulator* sim,
                         blocklayer::BlockDevice* data_path,
                         Lba log_region_start,
                         std::uint64_t log_region_blocks)
    : sim_(sim),
      data_path_(data_path),
      log_region_start_(log_region_start),
      log_region_blocks_(log_region_blocks) {}

void HybridStore::set_tracer(trace::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) {
    track_ = tracer_->RegisterTrack(trace::kPidHost, "sync-persist");
  }
}

void HybridStore::SyncPersist(std::vector<std::uint8_t> record,
                              std::function<void(Status)> cb,
                              trace::Ctx ctx) {
  const SimTime start = sim_->Now();
  counters_.Increment("sync_persists");
  counters_.Add("sync_bytes", record.size());
  // Trace identity of this persist: inherit the caller's span or mint
  // one, and record the whole commit-critical path as a kApp span when
  // it completes. Classic mode threads the span through the write+flush
  // below, so the trace shows what the block stack cost the commit.
  trace::SpanId span = ctx.span;
  if (tracer_ != nullptr && tracer_->enabled() && span == 0) {
    span = tracer_->NewSpan();
  }
  if (pcm_log_ != nullptr) {
    pcm_log_->Append(
        std::move(record),
        [this, start, span, cb = std::move(cb)](StatusOr<Lsn> r) {
          sync_latency_.Record(sim_->Now() - start);
          if (tracer_ != nullptr && span != 0) {
            tracer_->Record(trace::Stage::kApp, trace::Origin::kHostWrite,
                            span, 0, track_, start, sim_->Now());
          }
          cb(r.ok() ? Status::Ok() : r.status());
        });
    return;
  }
  // Classic: one whole log block per record (the interface has no
  // smaller write unit), then a flush barrier to defeat the volatile
  // cache — this is what WAL-on-SSD actually costs.
  counters_.Add("sync_padded_bytes",
                data_path_->block_bytes() > record.size()
                    ? data_path_->block_bytes() - record.size()
                    : 0);
  const Lba lba =
      log_region_start_ + (log_head_block_++ % log_region_blocks_);
  const std::uint64_t token = next_log_token_++;
  blocklayer::IoRequest write;
  write.op = blocklayer::IoOp::kWrite;
  write.lba = lba;
  write.nblocks = 1;
  write.tokens = {token};
  // Commit-critical: jumps lazy page flushes under a priority scheduler
  // (ref [13]).
  write.priority = 1;
  write.stream = wal_stream_;
  write.span = span;
  auto record_ptr =
      std::make_shared<std::vector<std::uint8_t>>(std::move(record));
  write.on_complete = [this, start, span, lba, token, record_ptr,
                       cb = std::move(cb)](
                          const blocklayer::IoResult& wr) mutable {
    if (!wr.status.ok()) {
      sync_latency_.Record(sim_->Now() - start);
      cb(wr.status);
      return;
    }
    blocklayer::IoRequest flush;
    flush.op = blocklayer::IoOp::kFlush;
    flush.nblocks = 1;
    flush.stream = wal_stream_;
    flush.span = span;
    flush.on_complete = [this, start, span, lba, token, record_ptr,
                         cb = std::move(cb)](
                            const blocklayer::IoResult& fr) {
      sync_latency_.Record(sim_->Now() - start);
      if (tracer_ != nullptr && span != 0) {
        tracer_->Record(trace::Stage::kApp, trace::Origin::kHostWrite,
                        span, 0, track_, start, sim_->Now());
      }
      if (fr.status.ok()) {
        // The record is now beyond the volatile cache: durable.
        classic_durable_.push_back(std::move(*record_ptr));
        classic_slots_.push_back(ClassicLogSlot{lba, token});
      }
      cb(fr.status);
    };
    data_path_->Submit(std::move(flush));
  };
  data_path_->Submit(std::move(write));
}

std::vector<std::vector<std::uint8_t>> HybridStore::DurableRecords() const {
  if (pcm_log_ != nullptr) return pcm_log_->RecoverAll();
  return classic_durable_;
}

void HybridStore::RecoverRecords(
    std::function<void(std::vector<std::vector<std::uint8_t>>)> cb) {
  if (pcm_log_ != nullptr) {
    auto records = pcm_log_->RecoverAll();
    sim_->Schedule(0, [cb = std::move(cb),
                       records = std::move(records)]() mutable {
      cb(std::move(records));
    });
    return;
  }
  struct Scan {
    std::size_t index = 0;
    std::vector<std::vector<std::uint8_t>> out;
    std::function<void(std::vector<std::vector<std::uint8_t>>)> cb;
  };
  auto scan = std::make_shared<Scan>();
  scan->cb = std::move(cb);
  auto step = std::make_shared<std::function<void()>>();
  *step = [this, scan, step]() {
    if (scan->index >= classic_slots_.size()) {
      scan->cb(std::move(scan->out));
      return;
    }
    const ClassicLogSlot slot = classic_slots_[scan->index];
    blocklayer::IoRequest read;
    read.op = blocklayer::IoOp::kRead;
    read.lba = slot.lba;
    read.nblocks = 1;
    read.priority = 1;
    read.on_complete = [this, scan, step,
                        slot](const blocklayer::IoResult& r) {
      if (!r.status.ok() || r.tokens.empty() || r.tokens[0] != slot.token) {
        // Torn point: the record at index is unreadable (or its block
        // was reclaimed by a wrapped log head). Everything after it is
        // suspect too — truncate here rather than replay past a hole.
        counters_.Increment("log_torn_truncations");
        scan->cb(std::move(scan->out));
        return;
      }
      scan->out.push_back(classic_durable_[scan->index]);
      ++scan->index;
      (*step)();
    };
    counters_.Increment("log_recovery_reads");
    data_path_->Submit(std::move(read));
  };
  (*step)();
}

void HybridStore::TruncateLog(std::function<void(Status)> cb) {
  if (pcm_log_ != nullptr) {
    pcm_log_->Truncate(std::move(cb));
    return;
  }
  classic_durable_.clear();
  classic_slots_.clear();
  log_head_block_ = 0;
  sim_->Schedule(0, [cb = std::move(cb)]() { cb(Status::Ok()); });
}

void HybridStore::SubmitAsync(blocklayer::IoRequest request) {
  counters_.Increment("async_requests");
  if (request.stream == 0) request.stream = async_stream_;
  data_path_->Submit(std::move(request));
}

void HybridStore::Execute(host::Command cmd) {
  if (host::IsBlockExpressible(cmd.kind)) {
    if (cmd.stream == 0) cmd.stream = async_stream_;
    SubmitAsync(host::LowerToIoRequest(std::move(cmd)));
    return;
  }
  // Hints and extended kinds are the data path's business.
  data_path_->Execute(std::move(cmd));
}

}  // namespace postblock::core
