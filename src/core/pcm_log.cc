#include "core/pcm_log.h"

#include <cstring>
#include <utility>

namespace postblock::core {

PcmLog::PcmLog(sim::Simulator* sim, pcm::PcmDevice* pcm,
               std::uint64_t region_off, std::uint64_t region_len)
    : sim_(sim), pcm_(pcm), region_off_(region_off),
      region_len_(region_len) {}

void PcmLog::Append(std::vector<std::uint8_t> payload,
                    std::function<void(StatusOr<Lsn>)> cb) {
  queue_.push_back(
      PendingAppend{std::move(payload), std::move(cb), sim_->Now()});
  PumpQueue();
}

void PcmLog::PumpQueue() {
  if (store_in_flight_ || queue_.empty()) return;
  PendingAppend item = std::move(queue_.front());
  queue_.pop_front();

  const std::uint64_t need =
      kHeaderBytes + item.payload.size() + kHeaderBytes;
  if (head_ + need > region_len_) {
    counters_.Increment("append_full");
    sim_->Schedule(0, [this, cb = std::move(item.cb)]() {
      cb(Status::ResourceExhausted("pcm log region full"));
      PumpQueue();
    });
    return;
  }
  const Lsn lsn = head_;
  const std::uint32_t len = static_cast<std::uint32_t>(item.payload.size());
  const std::uint32_t rec_seq = next_rec_seq_++;

  // One store covers header + payload + the new zero terminator; the
  // next append overwrites that terminator in place (no erase on PCM).
  std::vector<std::uint8_t> buf(
      kHeaderBytes + item.payload.size() + kHeaderBytes, 0);
  std::memcpy(buf.data(), &len, sizeof(len));
  std::memcpy(buf.data() + sizeof(len), &rec_seq, sizeof(rec_seq));
  std::memcpy(buf.data() + kHeaderBytes, item.payload.data(),
              item.payload.size());
  head_ += kHeaderBytes + item.payload.size();

  counters_.Increment("appends");
  counters_.Add("bytes_appended", item.payload.size());
  store_in_flight_ = true;
  pcm_->Write(region_off_ + lsn, std::move(buf),
              [this, lsn, start = item.enqueued_at,
               cb = std::move(item.cb)](Status st) {
                store_in_flight_ = false;
                append_latency_.Record(sim_->Now() - start);
                if (!st.ok()) {
                  cb(std::move(st));
                } else {
                  cb(lsn);
                }
                PumpQueue();
              });
}

void PcmLog::Truncate(std::function<void(Status)> cb) {
  head_ = 0;
  counters_.Increment("truncates");
  std::vector<std::uint8_t> zero(kHeaderBytes, 0);
  pcm_->Write(region_off_, std::move(zero), std::move(cb));
}

std::vector<std::vector<std::uint8_t>> PcmLog::RecoverAll() const {
  std::vector<std::vector<std::uint8_t>> out;
  std::uint64_t off = 0;
  for (;;) {
    if (off + kHeaderBytes > region_len_) break;
    auto header = pcm_->Peek(region_off_ + off, kHeaderBytes);
    if (!header.ok()) break;
    std::uint32_t len = 0;
    std::uint32_t rec_seq = 0;
    std::memcpy(&len, header->data(), sizeof(len));
    std::memcpy(&rec_seq, header->data() + sizeof(len), sizeof(rec_seq));
    if (len == 0 || rec_seq == 0) break;  // terminator
    if (off + kHeaderBytes + len > region_len_) break;  // corrupt tail
    auto payload = pcm_->Peek(region_off_ + off + kHeaderBytes, len);
    if (!payload.ok()) break;
    out.push_back(std::move(*payload));
    off += kHeaderBytes + len;
  }
  return out;
}

void PcmLog::ResetAfterCrash() {
  queue_.clear();
  store_in_flight_ = false;
  // Rewind the head to the durable chain's end.
  std::uint64_t off = 0;
  for (;;) {
    if (off + kHeaderBytes > region_len_) break;
    auto header = pcm_->Peek(region_off_ + off, kHeaderBytes);
    if (!header.ok()) break;
    std::uint32_t len = 0;
    std::uint32_t rec_seq = 0;
    std::memcpy(&len, header->data(), sizeof(len));
    std::memcpy(&rec_seq, header->data() + sizeof(len), sizeof(rec_seq));
    if (len == 0 || rec_seq == 0) break;
    if (off + kHeaderBytes + len > region_len_) break;
    off += kHeaderBytes + len;
  }
  head_ = off;
  counters_.Increment("crash_resets");
}

}  // namespace postblock::core
