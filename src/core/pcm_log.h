#ifndef POSTBLOCK_CORE_PCM_LOG_H_
#define POSTBLOCK_CORE_PCM_LOG_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/histogram.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/statusor.h"
#include "pcm/pcm_device.h"
#include "sim/simulator.h"

namespace postblock::core {

/// Log sequence number: byte offset of a record in the log region.
using Lsn = std::uint64_t;

/// Append-only persistent log over byte-addressable PCM — the paper's
/// Section 3 principle 1 target for synchronous persistence ("log
/// writes ... should be directed to PCM-based [storage] via non-volatile
/// memory accesses from the CPU").
///
/// Because PCM updates in place with no erase and no FTL, an append
/// costs exactly the record's lines on the memory bus — tens to hundreds
/// of nanoseconds — instead of a 4 KiB page program behind a block
/// interface. Records are length-prefixed; a zero length terminates the
/// scan, and each append rewrites the terminator in the same store.
class PcmLog {
 public:
  PcmLog(sim::Simulator* sim, pcm::PcmDevice* pcm, std::uint64_t region_off,
         std::uint64_t region_len);

  PcmLog(const PcmLog&) = delete;
  PcmLog& operator=(const PcmLog&) = delete;

  /// Appends one record; the callback fires when the bytes are durable
  /// and delivers the record's LSN. Fails with ResourceExhausted when
  /// the region is full (callers checkpoint + Truncate).
  void Append(std::vector<std::uint8_t> payload,
              std::function<void(StatusOr<Lsn>)> cb);

  /// Resets the log to empty (after a checkpoint). Durable once the
  /// callback fires.
  void Truncate(std::function<void(Status)> cb);

  /// Bytes appended since the last truncate (volatile view).
  std::uint64_t head() const { return head_; }
  std::uint64_t capacity() const { return region_len_; }

  /// Synchronous post-crash scan: all records readable from the region
  /// in append order. (Un-timed; recovery timing is measured separately
  /// by replaying reads.)
  std::vector<std::vector<std::uint8_t>> RecoverAll() const;

  /// Re-attaches after a power cut: drops queued/in-flight appends and
  /// rewinds the head to the end of the durable record chain (a torn
  /// append leaves the previous terminator in place).
  void ResetAfterCrash();

  const Histogram& append_latency() const { return append_latency_; }
  const Counters& counters() const { return counters_; }

 private:
  static constexpr std::uint64_t kHeaderBytes = 8;  // u32 len + u32 seq

  struct PendingAppend {
    std::vector<std::uint8_t> payload;
    std::function<void(StatusOr<Lsn>)> cb;
    SimTime enqueued_at;
  };

  /// Appends execute strictly in order: an acknowledged record is never
  /// ahead of an unacknowledged one in the scan chain, so the durable
  /// prefix is exactly the acknowledged prefix.
  void PumpQueue();

  sim::Simulator* sim_;
  pcm::PcmDevice* pcm_;
  std::uint64_t region_off_;
  std::uint64_t region_len_;
  std::uint64_t head_ = 0;
  std::uint32_t next_rec_seq_ = 1;
  std::deque<PendingAppend> queue_;
  bool store_in_flight_ = false;
  Histogram append_latency_;
  Counters counters_;
};

}  // namespace postblock::core

#endif  // POSTBLOCK_CORE_PCM_LOG_H_
