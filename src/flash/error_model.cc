#include "flash/error_model.h"

#include <algorithm>

namespace postblock::flash {

double ErrorModel::WearFactor(std::uint32_t erase_count) const {
  if (config_.endurance_cycles == 0) return 0.0;
  const double wear = static_cast<double>(erase_count) /
                      static_cast<double>(config_.endurance_cycles);
  return 1.0 + wear * wear * wear * config_.wear_amplification;
}

ReadOutcome ErrorModel::SampleRead(std::uint32_t erase_count, Rng* rng,
                                   std::uint32_t retry_step) const {
  double factor = WearFactor(erase_count);
  for (std::uint32_t i = 0; i < retry_step; ++i) {
    factor *= config_.retry_rate_decay;
  }
  const double p_uncorrectable =
      std::min(1.0, config_.base_uncorrectable_rate * factor);
  const double p_correctable =
      std::min(1.0, config_.base_correctable_rate * factor);
  const double draw = rng->NextDouble();
  if (draw < p_uncorrectable) return ReadOutcome::kUncorrectable;
  if (draw < p_uncorrectable + p_correctable) return ReadOutcome::kCorrectable;
  return ReadOutcome::kClean;
}

bool ErrorModel::SampleEraseFailure(std::uint32_t erase_count,
                                    Rng* rng) const {
  if (erase_count <= config_.endurance_cycles) return false;
  return rng->Bernoulli(config_.post_endurance_erase_failure);
}

}  // namespace postblock::flash
