#ifndef POSTBLOCK_FLASH_CHIP_H_
#define POSTBLOCK_FLASH_CHIP_H_

#include <cstdint>

#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/statusor.h"
#include "flash/error_model.h"
#include "flash/fault_injector.h"
#include "flash/geometry.h"
#include "flash/page_store.h"
#include "flash/timing.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "trace/tracer.h"

namespace postblock::flash {

/// The flash memory array behind an SSD controller: every chip/LUN/
/// plane/block/page in one device, with constraint enforcement (C1-C4),
/// wear tracking and the stochastic error model.
///
/// This class is *synchronous state*: it answers "what happens to the
/// cells". Timing and parallelism (LUN serialization, channel sharing)
/// are orchestrated by ssd::Controller using the Timing parameters,
/// which keeps the state machine exhaustively unit-testable.
class FlashArray {
 public:
  FlashArray(const Geometry& geometry, const Timing& timing,
             const ErrorModelConfig& errors, std::uint64_t seed = 42);

  FlashArray(const FlashArray&) = delete;
  FlashArray& operator=(const FlashArray&) = delete;

  const Geometry& geometry() const { return geometry_; }
  const Timing& timing() const { return timing_; }
  const ErrorModel& error_model() const { return error_model_; }

  /// Programs one page. Enforces C2 (erase-before-write) and C3
  /// (sequential programming within a block).
  Status Program(const Ppa& ppa, const PageData& data);

  /// Reads one page through the ECC path. Uncorrectable errors return
  /// DataLoss; correctable errors are counted and succeed. `outcome`
  /// (optional) reports what ECC saw — the controller's refresh policy
  /// watches for kCorrectable. `retry_step` > 0 is a retry-ladder
  /// re-sense with decayed error rates.
  StatusOr<PageData> Read(const Ppa& ppa, ReadOutcome* outcome = nullptr,
                          std::uint32_t retry_step = 0);

  /// Erases one block. Past the endurance budget the erase may fail,
  /// retiring the block (returns DataLoss; the block is marked bad).
  Status Erase(const BlockAddr& addr);

  /// FTL bookkeeping hooks (no cell activity, no timing).
  Status MarkInvalid(const Ppa& ppa) { return store_.MarkInvalid(ppa); }
  Status Revalidate(const Ppa& ppa) { return store_.Revalidate(ppa); }
  Status MarkBad(const BlockAddr& addr) { return store_.MarkBad(addr); }

  /// Error-model-free page inspection (recovery OOB scans, tests).
  StatusOr<PageData> Peek(const Ppa& ppa) const { return store_.Read(ppa); }

  PageState GetPageState(const Ppa& ppa) const {
    return store_.GetPageState(ppa);
  }
  const BlockInfo& GetBlockInfo(const BlockAddr& addr) const {
    return store_.GetBlockInfo(addr);
  }

  std::uint32_t MinEraseCount() const { return store_.MinEraseCount(); }
  std::uint32_t MaxEraseCount() const { return store_.MaxEraseCount(); }
  double MeanEraseCount() const { return store_.MeanEraseCount(); }
  std::uint64_t bad_blocks() const { return store_.bad_blocks(); }

  /// Counters: pages_read, pages_programmed, blocks_erased,
  /// reads_correctable, reads_uncorrectable, erase_failures.
  const Counters& counters() const { return counters_; }
  Counters* mutable_counters() { return &counters_; }

  /// Attaches the tracer (and the clock to stamp with): cell-health
  /// incidents — uncorrectable reads, erase failures retiring a block —
  /// become zero-duration markers on a "flash-health" track. Only rare
  /// error paths touch the tracer, so the array's hot path is unchanged.
  void set_tracer(trace::Tracer* tracer, sim::Simulator* sim);

  /// Attaches a scripted fault injector (not owned; may be null). The
  /// injector is consulted *before* the stochastic model and consumes
  /// no Rng draws, so an attached-but-empty injector leaves every
  /// schedule and every random sequence untouched.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() { return injector_; }

 private:
  Geometry geometry_;
  Timing timing_;
  ErrorModel error_model_;
  PageStore store_;
  Rng rng_;
  Counters counters_;
  FaultInjector* injector_ = nullptr;
  trace::Tracer* tracer_ = nullptr;
  sim::Simulator* sim_ = nullptr;
  std::uint32_t health_track_ = 0;
};

}  // namespace postblock::flash

#endif  // POSTBLOCK_FLASH_CHIP_H_
