#ifndef POSTBLOCK_FLASH_RNG_DOMAIN_H_
#define POSTBLOCK_FLASH_RNG_DOMAIN_H_

#include <cstdint>

#include "common/rng.h"

namespace postblock::flash {

/// Deterministic per-shard random streams for the sharded simulator.
///
/// Rng::Fork() derives sub-streams *sequentially* — the k-th fork
/// depends on how many draws preceded it, which is exactly wrong once
/// shards run concurrently: shard 3's stream must not depend on how
/// much randomness shard 1 consumed, or on which worker got there
/// first. An RngDomain instead derives each stream purely from
/// (base_seed, domain_id), so a shard's entire draw sequence is a
/// function of its own id — byte-identical at any worker count, and
/// stable when shards are added (existing shards' streams don't move).
///
/// Domain ids are arbitrary 64-bit labels; the sharded flash backend
/// uses the shard id for channel-local draws (GC victim liveness,
/// per-LUN scramble) and kControllerDomain for host-side draws.
class RngDomain {
 public:
  explicit RngDomain(std::uint64_t base_seed) : base_seed_(base_seed) {}

  /// Reserved domain id for the controller / host-side shard.
  static constexpr std::uint64_t kControllerDomain = ~std::uint64_t{0};

  /// An independent deterministic stream for `domain_id`. Equal
  /// (base_seed, domain_id) pairs always yield identical streams; any
  /// two distinct ids yield streams decorrelated by a splitmix64 mix
  /// (the same seeding discipline xoshiro's authors recommend).
  Rng ForDomain(std::uint64_t domain_id) const {
    return Rng(Mix(base_seed_ ^ Mix(domain_id)));
  }

  std::uint64_t base_seed() const { return base_seed_; }

 private:
  static std::uint64_t Mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  std::uint64_t base_seed_;
};

}  // namespace postblock::flash

#endif  // POSTBLOCK_FLASH_RNG_DOMAIN_H_
