#ifndef POSTBLOCK_FLASH_ADDRESS_H_
#define POSTBLOCK_FLASH_ADDRESS_H_

#include <cstdint>
#include <string>

#include "flash/geometry.h"

namespace postblock::flash {

/// Physical address of one flash block.
struct BlockAddr {
  std::uint32_t channel = 0;
  std::uint32_t lun = 0;    // within channel
  std::uint32_t plane = 0;  // within LUN
  std::uint32_t block = 0;  // within plane

  friend bool operator==(const BlockAddr&, const BlockAddr&) = default;

  /// Index of the owning LUN in [0, geometry.luns()).
  std::uint32_t GlobalLun(const Geometry& g) const {
    return channel * g.luns_per_channel + lun;
  }
  /// Dense index in [0, geometry.total_blocks()).
  std::uint64_t Flatten(const Geometry& g) const;
  static BlockAddr FromFlat(const Geometry& g, std::uint64_t flat);

  std::string ToString() const;
};

/// Physical address of one flash page (the paper's PPA).
struct Ppa {
  std::uint32_t channel = 0;
  std::uint32_t lun = 0;
  std::uint32_t plane = 0;
  std::uint32_t block = 0;
  std::uint32_t page = 0;  // within block

  friend bool operator==(const Ppa&, const Ppa&) = default;

  BlockAddr Block() const { return {channel, lun, plane, block}; }
  std::uint32_t GlobalLun(const Geometry& g) const {
    return channel * g.luns_per_channel + lun;
  }
  /// Dense index in [0, geometry.total_pages()).
  std::uint64_t Flatten(const Geometry& g) const;
  static Ppa FromFlat(const Geometry& g, std::uint64_t flat);

  std::string ToString() const;
};

/// Validates that the address components fit the geometry.
bool InBounds(const Geometry& g, const BlockAddr& a);
bool InBounds(const Geometry& g, const Ppa& a);

}  // namespace postblock::flash

#endif  // POSTBLOCK_FLASH_ADDRESS_H_
