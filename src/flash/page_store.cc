#include "flash/page_store.h"

#include <algorithm>

namespace postblock::flash {

PageStore::PageStore(const Geometry& geometry)
    : geometry_(geometry),
      page_state_(geometry.total_pages(), PageState::kFree),
      page_data_(geometry.total_pages()),
      blocks_(geometry.total_blocks()) {}

Status PageStore::CheckProgram(const Ppa& ppa) const {
  if (!InBounds(geometry_, ppa)) {
    return Status::OutOfRange("program: " + ppa.ToString());
  }
  const BlockInfo& blk = blocks_[BlockIndex(ppa.Block())];
  if (blk.bad) {
    return Status::FailedPrecondition("program to bad block " +
                                      ppa.Block().ToString());
  }
  if (page_state_[PageIndex(ppa)] != PageState::kFree) {
    // Constraint C2: erase-before-rewrite.
    return Status::FailedPrecondition("C2 violation: reprogram of " +
                                      ppa.ToString() + " without erase");
  }
  if (ppa.page < blk.write_point) {
    // Constraint C3: in-block programs must be in ascending page order
    // (ONFI allows gaps but never going backwards).
    return Status::FailedPrecondition(
        "C3 violation: program " + ppa.ToString() + " but write point is " +
        std::to_string(blk.write_point));
  }
  return Status::Ok();
}

Status PageStore::Program(const Ppa& ppa, const PageData& data) {
  PB_RETURN_IF_ERROR(CheckProgram(ppa));
  BlockInfo& blk = blocks_[BlockIndex(ppa.Block())];
  page_state_[PageIndex(ppa)] = PageState::kValid;
  page_data_[PageIndex(ppa)] = data;
  blk.write_point = ppa.page + 1;
  ++blk.valid_pages;
  return Status::Ok();
}

StatusOr<PageData> PageStore::Read(const Ppa& ppa) const {
  if (!InBounds(geometry_, ppa)) {
    return Status::OutOfRange("read: " + ppa.ToString());
  }
  if (page_state_[PageIndex(ppa)] == PageState::kFree) {
    return Status::FailedPrecondition("read of erased page " +
                                      ppa.ToString());
  }
  return page_data_[PageIndex(ppa)];
}

Status PageStore::Erase(const BlockAddr& addr) {
  if (!InBounds(geometry_, addr)) {
    return Status::OutOfRange("erase: " + addr.ToString());
  }
  BlockInfo& blk = blocks_[BlockIndex(addr)];
  if (blk.bad) {
    return Status::FailedPrecondition("erase of bad block " +
                                      addr.ToString());
  }
  const std::uint64_t first =
      Ppa{addr.channel, addr.lun, addr.plane, addr.block, 0}.Flatten(
          geometry_);
  for (std::uint32_t p = 0; p < geometry_.pages_per_block; ++p) {
    page_state_[first + p] = PageState::kFree;
    page_data_[first + p] = PageData{};
  }
  blk.write_point = 0;
  blk.valid_pages = 0;
  ++blk.erase_count;  // constraint C4 bookkeeping
  return Status::Ok();
}

Status PageStore::MarkInvalid(const Ppa& ppa) {
  if (!InBounds(geometry_, ppa)) {
    return Status::OutOfRange("invalidate: " + ppa.ToString());
  }
  if (page_state_[PageIndex(ppa)] != PageState::kValid) {
    return Status::FailedPrecondition("invalidate of non-valid page " +
                                      ppa.ToString());
  }
  page_state_[PageIndex(ppa)] = PageState::kInvalid;
  --blocks_[BlockIndex(ppa.Block())].valid_pages;
  return Status::Ok();
}

Status PageStore::Revalidate(const Ppa& ppa) {
  if (!InBounds(geometry_, ppa)) {
    return Status::OutOfRange("revalidate: " + ppa.ToString());
  }
  if (page_state_[PageIndex(ppa)] != PageState::kInvalid) {
    return Status::FailedPrecondition("revalidate of non-invalid page " +
                                      ppa.ToString());
  }
  page_state_[PageIndex(ppa)] = PageState::kValid;
  ++blocks_[BlockIndex(ppa.Block())].valid_pages;
  return Status::Ok();
}

Status PageStore::MarkBad(const BlockAddr& addr) {
  if (!InBounds(geometry_, addr)) {
    return Status::OutOfRange("mark-bad: " + addr.ToString());
  }
  BlockInfo& blk = blocks_[BlockIndex(addr)];
  if (!blk.bad) {
    blk.bad = true;
    ++bad_blocks_;
  }
  return Status::Ok();
}

PageState PageStore::GetPageState(const Ppa& ppa) const {
  return page_state_[PageIndex(ppa)];
}

const BlockInfo& PageStore::GetBlockInfo(const BlockAddr& addr) const {
  return blocks_[BlockIndex(addr)];
}

std::uint32_t PageStore::MinEraseCount() const {
  std::uint32_t m = ~0u;
  for (const auto& b : blocks_) {
    if (!b.bad) m = std::min(m, b.erase_count);
  }
  return m == ~0u ? 0 : m;
}

std::uint32_t PageStore::MaxEraseCount() const {
  std::uint32_t m = 0;
  for (const auto& b : blocks_) {
    if (!b.bad) m = std::max(m, b.erase_count);
  }
  return m;
}

double PageStore::MeanEraseCount() const {
  std::uint64_t sum = 0;
  std::uint64_t n = 0;
  for (const auto& b : blocks_) {
    if (!b.bad) {
      sum += b.erase_count;
      ++n;
    }
  }
  return n == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(n);
}

}  // namespace postblock::flash
