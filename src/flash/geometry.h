#ifndef POSTBLOCK_FLASH_GEOMETRY_H_
#define POSTBLOCK_FLASH_GEOMETRY_H_

#include <cstdint>

#include "common/types.h"

namespace postblock::flash {

/// Physical shape of the flash array behind an SSD controller:
/// channels × LUNs × planes × blocks × pages (the paper's Section 2.2
/// hierarchy). One LUN is the unit of operation interleaving; operations
/// on one LUN execute serially, across LUNs in parallel.
struct Geometry {
  std::uint32_t channels = 4;
  std::uint32_t luns_per_channel = 4;
  std::uint32_t planes_per_lun = 1;
  std::uint32_t blocks_per_plane = 128;
  std::uint32_t pages_per_block = 64;
  std::uint32_t page_size_bytes = 4096;

  std::uint32_t luns() const { return channels * luns_per_channel; }
  std::uint32_t blocks_per_lun() const {
    return planes_per_lun * blocks_per_plane;
  }
  std::uint64_t total_blocks() const {
    return static_cast<std::uint64_t>(luns()) * blocks_per_lun();
  }
  std::uint64_t pages_per_lun() const {
    return static_cast<std::uint64_t>(blocks_per_lun()) * pages_per_block;
  }
  std::uint64_t total_pages() const {
    return total_blocks() * pages_per_block;
  }
  std::uint64_t capacity_bytes() const {
    return total_pages() * page_size_bytes;
  }

  bool Valid() const {
    return channels > 0 && luns_per_channel > 0 && planes_per_lun > 0 &&
           blocks_per_plane > 0 && pages_per_block > 0 &&
           page_size_bytes > 0;
  }
};

}  // namespace postblock::flash

#endif  // POSTBLOCK_FLASH_GEOMETRY_H_
