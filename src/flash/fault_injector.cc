#include "flash/fault_injector.h"

namespace postblock::flash {

FaultInjector::FaultInjector(const Geometry& geometry)
    : geometry_(geometry), busy_(geometry.luns()) {}

void FaultInjector::FailRead(const Ppa& ppa, std::uint32_t nth,
                             ReadOutcome outcome) {
  read_scripts_[ppa.Flatten(geometry_)].nth[nth] = outcome;
}

void FaultInjector::FailRead(const Ppa& ppa,
                             std::initializer_list<std::uint32_t> nths,
                             ReadOutcome outcome) {
  for (std::uint32_t n : nths) FailRead(ppa, n, outcome);
}

void FaultInjector::FailReadAlways(const Ppa& ppa, ReadOutcome outcome) {
  auto& script = read_scripts_[ppa.Flatten(geometry_)];
  script.sticky = true;
  script.sticky_outcome = outcome;
}

void FaultInjector::ClearReadFaults(const Ppa& ppa) {
  read_scripts_.erase(ppa.Flatten(geometry_));
}

void FaultInjector::FailErase(const BlockAddr& addr, std::uint32_t nth) {
  erase_scripts_[addr.Flatten(geometry_)].nth[nth] = true;
}

void FaultInjector::StuckBusy(std::uint32_t global_lun, SimTime extra_ns,
                              std::uint32_t ops) {
  if (global_lun >= busy_.size()) return;
  busy_[global_lun].extra_ns = extra_ns;
  busy_[global_lun].ops = ops;
}

bool FaultInjector::OnRead(const Ppa& ppa, ReadOutcome* outcome) {
  if (read_scripts_.empty()) return false;
  auto it = read_scripts_.find(ppa.Flatten(geometry_));
  if (it == read_scripts_.end()) return false;
  ReadScript& script = it->second;
  ++script.seen;
  if (script.sticky) {
    *outcome = script.sticky_outcome;
    counters_.Increment("read_faults_fired");
    return true;
  }
  auto hit = script.nth.find(script.seen);
  if (hit == script.nth.end()) return false;
  *outcome = hit->second;
  script.nth.erase(hit);
  counters_.Increment("read_faults_fired");
  return true;
}

bool FaultInjector::OnErase(const BlockAddr& addr) {
  if (erase_scripts_.empty()) return false;
  auto it = erase_scripts_.find(addr.Flatten(geometry_));
  if (it == erase_scripts_.end()) return false;
  EraseScript& script = it->second;
  ++script.seen;
  auto hit = script.nth.find(script.seen);
  if (hit == script.nth.end()) return false;
  script.nth.erase(hit);
  counters_.Increment("erase_faults_fired");
  return true;
}

SimTime FaultInjector::StuckBusyPenalty(std::uint32_t global_lun) {
  if (global_lun >= busy_.size()) return 0;
  BusyScript& script = busy_[global_lun];
  if (script.ops == 0) return 0;
  --script.ops;
  counters_.Increment("busy_penalties");
  return script.extra_ns;
}

}  // namespace postblock::flash
