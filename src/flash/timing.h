#ifndef POSTBLOCK_FLASH_TIMING_H_
#define POSTBLOCK_FLASH_TIMING_H_

#include <cstdint>

#include "common/types.h"

namespace postblock::flash {

/// Flash operation timing. Values are circa-2012 datasheet figures, the
/// era the paper reasons about. The split between *chip* time (array
/// read/program/erase) and *channel* time (command + data transfer) is
/// what produces the paper's channel-bound vs chip-bound distinction
/// (Figure 1): a read holds the channel for its data transfer after the
/// array read; a program holds the channel before the array program.
struct Timing {
  SimTime read_ns = 40 * kMicrosecond;     // array read to page register
  SimTime program_ns = 400 * kMicrosecond; // page register to array
  SimTime erase_ns = 2 * kMillisecond;     // whole-block erase
  SimTime cmd_ns = 200;                    // command/address cycles on bus
  /// Channel bus bandwidth for data transfers (ONFI-2 class).
  std::uint64_t channel_mb_per_s = 200;

  /// Per-operation energy in nanojoules (the accounting of the authors'
  /// own uFLIP energy study, the paper's ref [2]). Benches report
  /// energy-per-host-write so GC/merge overheads show up as nJ, not
  /// just latency.
  std::uint64_t read_energy_nj = 10'000;      // ~10 uJ array read
  std::uint64_t program_energy_nj = 50'000;   // ~50 uJ array program
  std::uint64_t erase_energy_nj = 150'000;    // ~150 uJ block erase
  std::uint64_t transfer_nj_per_kib = 500;    // bus transfer energy

  /// Bus occupancy to move one page of `page_bytes`.
  /// bytes / (MB/s) = bytes * 1000 / mb_per_s nanoseconds (MB = 10^6 B).
  SimTime TransferNs(std::uint64_t page_bytes) const {
    return cmd_ns + page_bytes * 1000 / channel_mb_per_s;
  }

  /// SLC-class chip (fast, high endurance).
  static Timing Slc() {
    Timing t;
    t.read_ns = 25 * kMicrosecond;
    t.program_ns = 200 * kMicrosecond;
    t.erase_ns = 1500 * kMicrosecond;
    return t;
  }
  /// MLC-class chip (the 2012 mainstream; library default).
  static Timing Mlc() { return Timing{}; }
  /// TLC-class chip (slow, low endurance — the paper's density trend).
  static Timing Tlc() {
    Timing t;
    t.read_ns = 75 * kMicrosecond;
    t.program_ns = 900 * kMicrosecond;
    t.erase_ns = 3 * kMillisecond;
    return t;
  }
};

}  // namespace postblock::flash

#endif  // POSTBLOCK_FLASH_TIMING_H_
