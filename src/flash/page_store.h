#ifndef POSTBLOCK_FLASH_PAGE_STORE_H_
#define POSTBLOCK_FLASH_PAGE_STORE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "common/types.h"
#include "flash/address.h"
#include "flash/geometry.h"

namespace postblock::flash {

/// State of one physical flash page.
enum class PageState : std::uint8_t {
  kFree = 0,   // erased, programmable
  kValid,      // programmed, holds live data
  kInvalid,    // programmed, data superseded (awaiting GC)
};

/// Content of one programmed page. `lba`/`seq` model the out-of-band
/// (OOB/spare) area real FTLs use for crash recovery; `token` stands in
/// for the 4 KiB payload (tests stamp it to verify end-to-end integrity
/// without simulating page bytes).
struct PageData {
  Lba lba = kInvalidLba;
  SequenceNumber seq = 0;
  std::uint64_t token = 0;
  /// Atomic-write group id (0 = not part of a group). A group's pages
  /// only become durable once a commit marker page for the group exists
  /// (see ftl::PageFtl::WriteAtomic and core::AtomicWriter).
  std::uint64_t group = 0;

  friend bool operator==(const PageData&, const PageData&) = default;
};

/// Marker LBA used by commit pages of atomic write groups.
inline constexpr Lba kAtomicCommitLba = kInvalidLba - 1;

/// OOB `lba` sentinel for host-managed (nameless) pages written by the
/// vision-append FTL with no owner stamp: the page has no logical
/// address — the host holds its name. Stamped nameless writes put the
/// host's owner tag in `lba` instead (the de-indirection back-pointer),
/// so a post-crash scan can return (name, owner, epoch) tuples.
inline constexpr Lba kNamelessLba = kInvalidLba - 2;

/// Per-block bookkeeping.
struct BlockInfo {
  std::uint32_t write_point = 0;  // next programmable page (constraint C3)
  std::uint32_t valid_pages = 0;
  std::uint32_t erase_count = 0;
  bool bad = false;
};

/// Pure page/block state container enforcing the paper's flash
/// constraints:
///   C1 reads and programs are page-granular (implicit in the API),
///   C2 a block must be erased before any page in it is reprogrammed,
///   C3 programs are in ascending page order within a block (ONFI
///      semantics: gaps allowed, never backwards),
///   C4 erase cycles are finite (tracked here, enforced by ErrorModel).
/// Timing and parallelism live in ssd::Controller; this class is
/// synchronous and exhaustively unit-testable.
class PageStore {
 public:
  explicit PageStore(const Geometry& geometry);

  const Geometry& geometry() const { return geometry_; }

  /// Validates a program without mutating (bounds, bad block, C2/C3).
  Status CheckProgram(const Ppa& ppa) const;
  /// Programs a page. C2/C3 violations return FailedPrecondition.
  Status Program(const Ppa& ppa, const PageData& data);

  /// Reads a programmed page (valid or superseded — the charge stays in
  /// the cells until erase). Reading a free page is an error.
  StatusOr<PageData> Read(const Ppa& ppa) const;

  /// Erases a block: all pages return to kFree, write point resets,
  /// erase count increments. Erasing a bad block is an error.
  Status Erase(const BlockAddr& addr);

  /// FTL bookkeeping: marks a previously valid page as superseded.
  Status MarkInvalid(const Ppa& ppa);

  /// Recovery bookkeeping: re-marks a superseded page as live (used when
  /// an OOB scan after power loss determines it holds the newest copy).
  Status Revalidate(const Ppa& ppa);

  /// Marks a block as bad (called by the error model / controller).
  Status MarkBad(const BlockAddr& addr);

  PageState GetPageState(const Ppa& ppa) const;
  const BlockInfo& GetBlockInfo(const BlockAddr& addr) const;

  /// Wear statistics across all non-bad blocks.
  std::uint32_t MinEraseCount() const;
  std::uint32_t MaxEraseCount() const;
  double MeanEraseCount() const;
  std::uint64_t bad_blocks() const { return bad_blocks_; }

 private:
  std::uint64_t PageIndex(const Ppa& ppa) const {
    return ppa.Flatten(geometry_);
  }
  std::uint64_t BlockIndex(const BlockAddr& a) const {
    return a.Flatten(geometry_);
  }

  Geometry geometry_;
  std::vector<PageState> page_state_;
  std::vector<PageData> page_data_;
  std::vector<BlockInfo> blocks_;
  std::uint64_t bad_blocks_ = 0;
};

}  // namespace postblock::flash

#endif  // POSTBLOCK_FLASH_PAGE_STORE_H_
