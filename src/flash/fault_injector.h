#ifndef POSTBLOCK_FLASH_FAULT_INJECTOR_H_
#define POSTBLOCK_FLASH_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "flash/address.h"
#include "flash/error_model.h"
#include "flash/geometry.h"

namespace postblock::flash {

/// Scripted fault schedules layered over the stochastic ErrorModel.
///
/// The stochastic model answers "how often do errors happen"; this
/// answers "what happens when *this* read fails" — the reproducible
/// half of reliability testing. Scripts are consumed deterministically:
/// no Rng is involved, and a FlashArray with an attached-but-empty
/// injector consumes exactly the same Rng draws as one with none, so
/// clean runs stay schedule-identical (the check_perf gate relies on
/// this).
///
/// Read faults count *attempts*: the controller's retry ladder re-reads
/// the same PPA, and each attempt advances the per-PPA sequence number.
/// `FailRead(ppa, {1, 2})` therefore fails the first two attempts and
/// lets the third succeed — the canonical retry-ladder script.
class FaultInjector {
 public:
  explicit FaultInjector(const Geometry& geometry);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // --- Scripting ----------------------------------------------------
  /// Fails the nth subsequent read attempt of `ppa` (1-based, counted
  /// from the moment the first fault for this PPA is scripted).
  void FailRead(const Ppa& ppa, std::uint32_t nth,
                ReadOutcome outcome = ReadOutcome::kUncorrectable);
  /// Convenience: fails attempts `nths` of `ppa`.
  void FailRead(const Ppa& ppa, std::initializer_list<std::uint32_t> nths,
                ReadOutcome outcome = ReadOutcome::kUncorrectable);
  /// Every read attempt of `ppa` fails with `outcome` until
  /// ClearReadFaults — models a page whose cells are simply gone.
  void FailReadAlways(const Ppa& ppa,
                      ReadOutcome outcome = ReadOutcome::kUncorrectable);
  void ClearReadFaults(const Ppa& ppa);

  /// Fails the nth subsequent erase of block `addr` (1-based), which
  /// retires the block exactly like a stochastic post-endurance death.
  void FailErase(const BlockAddr& addr, std::uint32_t nth = 1);

  /// The next `ops` array operations on global LUN `lun` each take an
  /// extra `extra_ns` of array time (stuck-busy die).
  void StuckBusy(std::uint32_t global_lun, SimTime extra_ns,
                 std::uint32_t ops = 1);

  // --- Hooks (FlashArray / ssd::Controller) -------------------------
  /// Consult-and-consume. True = a scripted fault fires for this read
  /// attempt; `*outcome` is set. False = fall through to the
  /// stochastic model.
  bool OnRead(const Ppa& ppa, ReadOutcome* outcome);
  /// True = this erase fails, retiring the block.
  bool OnErase(const BlockAddr& addr);
  /// Extra array time for the next operation on `global_lun` (0 if no
  /// stuck-busy script is active). Consumes one scripted op.
  SimTime StuckBusyPenalty(std::uint32_t global_lun);

  /// Counters: read_faults_fired, erase_faults_fired, busy_penalties.
  const Counters& counters() const { return counters_; }

 private:
  struct ReadScript {
    std::uint32_t seen = 0;  // attempts observed since scripting began
    bool sticky = false;
    ReadOutcome sticky_outcome = ReadOutcome::kUncorrectable;
    std::map<std::uint32_t, ReadOutcome> nth;  // 1-based attempt -> fault
  };
  struct EraseScript {
    std::uint32_t seen = 0;
    std::map<std::uint32_t, bool> nth;
  };
  struct BusyScript {
    SimTime extra_ns = 0;
    std::uint32_t ops = 0;
  };

  Geometry geometry_;
  std::unordered_map<std::uint64_t, ReadScript> read_scripts_;   // flat PPA
  std::unordered_map<std::uint64_t, EraseScript> erase_scripts_; // flat block
  std::vector<BusyScript> busy_;  // indexed by global LUN
  Counters counters_;
};

}  // namespace postblock::flash

#endif  // POSTBLOCK_FLASH_FAULT_INJECTOR_H_
