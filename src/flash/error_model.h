#ifndef POSTBLOCK_FLASH_ERROR_MODEL_H_
#define POSTBLOCK_FLASH_ERROR_MODEL_H_

#include <cstdint>

#include "common/rng.h"

namespace postblock::flash {

/// Outcome of reading a page through ECC.
enum class ReadOutcome {
  kClean,          // no bit errors
  kCorrectable,    // ECC fixed it (costs nothing extra in this model)
  kUncorrectable,  // data loss — the controller must have redundancy
};

/// Wear-dependent reliability model (the paper's constraint C4 and the
/// "error management must happen at the SSD level" argument of Myth 1).
/// Raw bit error rate grows polynomially with the block's erase count;
/// beyond `endurance_cycles`, erases may permanently retire the block.
struct ErrorModelConfig {
  std::uint32_t endurance_cycles = 10000;  // MLC-class
  double base_correctable_rate = 1e-4;     // per read, fresh block
  double base_uncorrectable_rate = 1e-9;   // per read, fresh block
  /// Multiplier applied at 100% wear (rates scale with (wear)^3).
  double wear_amplification = 1e5;
  /// Probability an erase past endurance kills the block.
  double post_endurance_erase_failure = 0.02;
  /// Each rung of the controller's read-retry ladder re-senses with a
  /// tuned reference voltage: error rates shrink by this factor per
  /// retry step. (Not part of the preset aggregates — same default for
  /// every flash class.)
  double retry_rate_decay = 0.1;

  static ErrorModelConfig Slc() {
    return {100000, 1e-5, 1e-10, 1e4, 0.01};
  }
  static ErrorModelConfig Mlc() { return {}; }
  static ErrorModelConfig Tlc() {
    // The paper: "5000 cycles for triple-level-cell flash".
    return {5000, 1e-3, 1e-8, 1e6, 0.05};
  }
  /// No stochastic failures at all — for deterministic tests/benches.
  static ErrorModelConfig None() { return {~0u, 0.0, 0.0, 0.0, 0.0}; }
};

/// Stateless policy object; all randomness comes from the injected Rng.
class ErrorModel {
 public:
  explicit ErrorModel(const ErrorModelConfig& config) : config_(config) {}

  const ErrorModelConfig& config() const { return config_; }

  /// `retry_step` > 0 models a re-sense on the controller's retry
  /// ladder: rates decay by retry_rate_decay^step. Always draws exactly
  /// one random number, so attaching retries never perturbs clean-run
  /// schedules at step 0.
  ReadOutcome SampleRead(std::uint32_t erase_count, Rng* rng,
                         std::uint32_t retry_step = 0) const;

  /// True if this erase (the block's `erase_count`-th) kills the block.
  bool SampleEraseFailure(std::uint32_t erase_count, Rng* rng) const;

  /// Wear factor in [0, inf): rates scale with 1 + wear^3 * amplification.
  double WearFactor(std::uint32_t erase_count) const;

 private:
  ErrorModelConfig config_;
};

}  // namespace postblock::flash

#endif  // POSTBLOCK_FLASH_ERROR_MODEL_H_
