#include "flash/address.h"

#include <cstdio>

namespace postblock::flash {

std::uint64_t BlockAddr::Flatten(const Geometry& g) const {
  return (static_cast<std::uint64_t>(GlobalLun(g)) * g.planes_per_lun +
          plane) *
             g.blocks_per_plane +
         block;
}

BlockAddr BlockAddr::FromFlat(const Geometry& g, std::uint64_t flat) {
  BlockAddr a;
  a.block = static_cast<std::uint32_t>(flat % g.blocks_per_plane);
  flat /= g.blocks_per_plane;
  a.plane = static_cast<std::uint32_t>(flat % g.planes_per_lun);
  flat /= g.planes_per_lun;
  const auto global_lun = static_cast<std::uint32_t>(flat);
  a.channel = global_lun / g.luns_per_channel;
  a.lun = global_lun % g.luns_per_channel;
  return a;
}

std::string BlockAddr::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "ch%u/lun%u/pl%u/blk%u", channel, lun,
                plane, block);
  return buf;
}

std::uint64_t Ppa::Flatten(const Geometry& g) const {
  return Block().Flatten(g) * g.pages_per_block + page;
}

Ppa Ppa::FromFlat(const Geometry& g, std::uint64_t flat) {
  const auto page = static_cast<std::uint32_t>(flat % g.pages_per_block);
  const BlockAddr b = BlockAddr::FromFlat(g, flat / g.pages_per_block);
  return Ppa{b.channel, b.lun, b.plane, b.block, page};
}

std::string Ppa::ToString() const {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "ch%u/lun%u/pl%u/blk%u/pg%u", channel, lun,
                plane, block, page);
  return buf;
}

bool InBounds(const Geometry& g, const BlockAddr& a) {
  return a.channel < g.channels && a.lun < g.luns_per_channel &&
         a.plane < g.planes_per_lun && a.block < g.blocks_per_plane;
}

bool InBounds(const Geometry& g, const Ppa& a) {
  return InBounds(g, a.Block()) && a.page < g.pages_per_block;
}

}  // namespace postblock::flash
