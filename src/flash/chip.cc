#include "flash/chip.h"

namespace postblock::flash {

FlashArray::FlashArray(const Geometry& geometry, const Timing& timing,
                       const ErrorModelConfig& errors, std::uint64_t seed)
    : geometry_(geometry),
      timing_(timing),
      error_model_(errors),
      store_(geometry),
      rng_(seed) {}

void FlashArray::set_tracer(trace::Tracer* tracer, sim::Simulator* sim) {
  tracer_ = tracer;
  sim_ = sim;
  if (tracer_ != nullptr) {
    health_track_ =
        tracer_->RegisterTrack(trace::kPidFlash, "flash-health");
  }
}

Status FlashArray::Program(const Ppa& ppa, const PageData& data) {
  PB_RETURN_IF_ERROR(store_.Program(ppa, data));
  counters_.Increment("pages_programmed");
  return Status::Ok();
}

StatusOr<PageData> FlashArray::Read(const Ppa& ppa, ReadOutcome* outcome,
                                    std::uint32_t retry_step) {
  auto result = store_.Read(ppa);
  if (!result.ok()) return result;
  counters_.Increment("pages_read");
  const std::uint32_t wear =
      store_.GetBlockInfo(ppa.Block()).erase_count;
  ReadOutcome sampled;
  if (injector_ == nullptr || !injector_->OnRead(ppa, &sampled)) {
    sampled = error_model_.SampleRead(wear, &rng_, retry_step);
  }
  if (outcome != nullptr) *outcome = sampled;
  switch (sampled) {
    case ReadOutcome::kClean:
      break;
    case ReadOutcome::kCorrectable:
      counters_.Increment("reads_correctable");
      break;
    case ReadOutcome::kUncorrectable:
      counters_.Increment("reads_uncorrectable");
      if (tracer_ != nullptr && tracer_->enabled()) {
        tracer_->Mark(trace::Stage::kCellOp, trace::Origin::kMeta, 0,
                      health_track_, sim_->Now(), ppa.block);
      }
      return Status::DataLoss("uncorrectable ECC error at " +
                              ppa.ToString());
  }
  return result;
}

Status FlashArray::Erase(const BlockAddr& addr) {
  const std::uint32_t wear_before = store_.GetBlockInfo(addr).erase_count;
  PB_RETURN_IF_ERROR(store_.Erase(addr));
  counters_.Increment("blocks_erased");
  const bool scripted =
      injector_ != nullptr && injector_->OnErase(addr);
  if (scripted || error_model_.SampleEraseFailure(wear_before + 1, &rng_)) {
    counters_.Increment("erase_failures");
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->Mark(trace::Stage::kCellOp, trace::Origin::kMeta, 0,
                    health_track_, sim_->Now(), addr.block);
    }
    PB_RETURN_IF_ERROR(store_.MarkBad(addr));
    return Status::DataLoss("erase failure retired block " +
                            addr.ToString());
  }
  return Status::Ok();
}

}  // namespace postblock::flash
