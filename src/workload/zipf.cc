#include "workload/zipf.h"

#include <algorithm>
#include <cmath>

namespace postblock::workload {

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta,
                             std::uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  cdf_.resize(n_);
  double sum = 0;
  for (std::uint64_t r = 0; r < n_; ++r) {
    sum += 1.0 / std::pow(static_cast<double>(r + 1), theta_);
    cdf_[r] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

std::uint64_t ZipfGenerator::Next() {
  const double u = rng_.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

}  // namespace postblock::workload
