#ifndef POSTBLOCK_WORKLOAD_ZIPF_H_
#define POSTBLOCK_WORKLOAD_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace postblock::workload {

/// Zipf-distributed values in [0, n): rank r drawn with probability
/// proportional to 1/(r+1)^theta. theta=0 degenerates to uniform;
/// theta around 0.99 is the usual "skewed OLTP" setting.
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta, std::uint64_t seed = 7);

  std::uint64_t Next();

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  Rng rng_;
  std::vector<double> cdf_;  // cumulative probability by rank
};

}  // namespace postblock::workload

#endif  // POSTBLOCK_WORKLOAD_ZIPF_H_
