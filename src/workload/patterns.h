#ifndef POSTBLOCK_WORKLOAD_PATTERNS_H_
#define POSTBLOCK_WORKLOAD_PATTERNS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "blocklayer/block_device.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/types.h"
#include "sim/simulator.h"
#include "workload/zipf.h"

namespace postblock::workload {

/// One host IO in a generated stream.
struct IoDesc {
  bool is_write = false;
  Lba lba = 0;
  std::uint32_t nblocks = 1;
};

/// uFLIP-style access pattern generator (the authors' own benchmark
/// methodology, refs [2,3,6]): each call yields the next IO.
class Pattern {
 public:
  virtual ~Pattern() = default;
  virtual IoDesc Next() = 0;
};

/// Sequential over [start, start+len), wrapping.
class SequentialPattern : public Pattern {
 public:
  SequentialPattern(Lba start, std::uint64_t len, bool is_write,
                    std::uint32_t nblocks = 1);
  IoDesc Next() override;

 private:
  Lba start_;
  std::uint64_t len_;
  bool is_write_;
  std::uint32_t nblocks_;
  std::uint64_t pos_ = 0;
};

/// Uniform random, block-aligned.
class RandomPattern : public Pattern {
 public:
  RandomPattern(Lba start, std::uint64_t len, bool is_write,
                std::uint32_t nblocks = 1, std::uint64_t seed = 11);
  IoDesc Next() override;

 private:
  Lba start_;
  std::uint64_t len_;
  bool is_write_;
  std::uint32_t nblocks_;
  Rng rng_;
};

/// Fixed-stride (uFLIP's "stride" micro-pattern).
class StridedPattern : public Pattern {
 public:
  StridedPattern(Lba start, std::uint64_t len, std::uint64_t stride,
                 bool is_write);
  IoDesc Next() override;

 private:
  Lba start_;
  std::uint64_t len_;
  std::uint64_t stride_;
  bool is_write_;
  std::uint64_t pos_ = 0;
};

/// Zipf-skewed random single-block accesses.
class ZipfPattern : public Pattern {
 public:
  ZipfPattern(Lba start, std::uint64_t len, double theta, bool is_write,
              std::uint64_t seed = 13);
  IoDesc Next() override;

 private:
  Lba start_;
  bool is_write_;
  ZipfGenerator zipf_;
};

/// Probabilistic read/write mix over two sub-patterns.
class MixedPattern : public Pattern {
 public:
  MixedPattern(std::unique_ptr<Pattern> reads,
               std::unique_ptr<Pattern> writes, double write_fraction,
               std::uint64_t seed = 17);
  IoDesc Next() override;

 private:
  std::unique_ptr<Pattern> reads_;
  std::unique_ptr<Pattern> writes_;
  double write_fraction_;
  Rng rng_;
};

/// Result of a closed-loop run against a block device.
struct RunResult {
  std::uint64_t ops = 0;
  std::uint64_t blocks = 0;
  std::uint64_t errors = 0;
  SimTime elapsed_ns = 0;
  Histogram latency;  // per-request, ns

  double Iops() const {
    return elapsed_ns == 0
               ? 0.0
               : static_cast<double>(ops) * 1e9 /
                     static_cast<double>(elapsed_ns);
  }
  double BytesPerSec(std::uint32_t block_bytes) const {
    return elapsed_ns == 0
               ? 0.0
               : static_cast<double>(blocks) * block_bytes * 1e9 /
                     static_cast<double>(elapsed_ns);
  }
};

/// Drives `ops` IOs from `pattern` at a fixed queue depth (closed loop),
/// runs the simulator to completion, and reports throughput + latency.
/// Write tokens are derived from (lba, op index) so integrity checks can
/// recompute them.
RunResult RunClosedLoop(sim::Simulator* sim,
                        blocklayer::BlockDevice* device, Pattern* pattern,
                        std::uint64_t ops, std::uint32_t queue_depth);

}  // namespace postblock::workload

#endif  // POSTBLOCK_WORKLOAD_PATTERNS_H_
