#include "workload/multi_tenant.h"

#include <functional>
#include <memory>
#include <utility>

namespace postblock::workload {

namespace {

inline std::uint64_t Fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

MixResult RunMultiTenantMix(sim::Simulator* sim,
                            std::vector<TenantLoad> loads) {
  struct State {
    std::vector<TenantLoad> loads;
    MixResult result;
    std::uint64_t bounded_left = 0;  // bounded tenants not yet done
    std::uint64_t inflight = 0;
    bool stopped = false;  // background tenants stop issuing
    SimTime start = 0;
  };
  auto state = std::make_shared<State>();
  state->loads = std::move(loads);
  state->result.tenants.resize(state->loads.size());
  state->result.digest = 1469598103934665603ull;  // FNV offset basis
  state->start = sim->Now();
  for (const TenantLoad& l : state->loads) {
    if (l.ops != 0) ++state->bounded_left;
  }

  auto issue = std::make_shared<std::function<void(std::size_t)>>();
  *issue = [sim, state, issue](std::size_t ti) {
    TenantLoad& load = state->loads[ti];
    TenantRunResult& res = state->result.tenants[ti];
    if (load.ops != 0 && res.issued >= load.ops) return;
    if (load.ops == 0 && state->stopped) return;
    const std::uint64_t index = res.issued++;
    const IoDesc d = load.pattern->Next();
    blocklayer::IoRequest req;
    req.op =
        d.is_write ? blocklayer::IoOp::kWrite : blocklayer::IoOp::kRead;
    req.lba = d.lba;
    req.nblocks = d.nblocks;
    if (d.is_write) {
      req.tokens.reserve(d.nblocks);
      for (std::uint32_t b = 0; b < d.nblocks; ++b) {
        req.tokens.push_back((d.lba + b) * 1000003ull + index + 1);
      }
    }
    const SimTime submit_time = sim->Now();
    const bool is_write = d.is_write;
    const std::uint32_t nblocks = d.nblocks;
    ++state->inflight;
    req.on_complete = [sim, state, issue, ti, submit_time, is_write,
                       nblocks](const blocklayer::IoResult& r) {
      TenantLoad& load = state->loads[ti];
      TenantRunResult& res = state->result.tenants[ti];
      --state->inflight;
      ++res.completed;
      res.blocks += nblocks;
      if (!r.status.ok()) ++res.errors;
      const SimTime lat = sim->Now() - submit_time;
      (is_write ? res.write_latency : res.read_latency).Record(lat);
      std::uint64_t& digest = state->result.digest;
      digest = Fnv1a(digest, ti);
      digest = Fnv1a(digest, sim->Now());
      digest = Fnv1a(digest, r.status.ok() ? 1 : 0);
      if (load.ops != 0 && res.completed == load.ops) {
        --state->bounded_left;
        if (state->bounded_left == 0) state->stopped = true;
        return;
      }
      if (load.think_ns == 0) {
        (*issue)(ti);
      } else {
        sim->Schedule(load.think_ns, [issue, ti]() { (*issue)(ti); });
      }
    };
    load.device->Submit(std::move(req));
  };

  for (std::size_t ti = 0; ti < state->loads.size(); ++ti) {
    const std::uint32_t depth = state->loads[ti].queue_depth;
    for (std::uint32_t q = 0; q < depth; ++q) (*issue)(ti);
  }
  sim->RunUntilPredicate([state]() {
    return (state->bounded_left == 0 || state->loads.empty()) &&
           state->inflight == 0;
  });

  state->result.elapsed_ns = sim->Now() - state->start;
  MixResult out = std::move(state->result);
  // Break the self-reference cycle so the closure releases.
  *issue = [](std::size_t) {};
  return out;
}

}  // namespace postblock::workload
