#include "workload/patterns.h"

#include <memory>
#include <utility>

namespace postblock::workload {

SequentialPattern::SequentialPattern(Lba start, std::uint64_t len,
                                     bool is_write, std::uint32_t nblocks)
    : start_(start), len_(len), is_write_(is_write), nblocks_(nblocks) {}

IoDesc SequentialPattern::Next() {
  IoDesc d;
  d.is_write = is_write_;
  d.nblocks = nblocks_;
  d.lba = start_ + pos_;
  pos_ += nblocks_;
  if (pos_ + nblocks_ > len_) pos_ = 0;
  return d;
}

RandomPattern::RandomPattern(Lba start, std::uint64_t len, bool is_write,
                             std::uint32_t nblocks, std::uint64_t seed)
    : start_(start),
      len_(len),
      is_write_(is_write),
      nblocks_(nblocks),
      rng_(seed) {}

IoDesc RandomPattern::Next() {
  IoDesc d;
  d.is_write = is_write_;
  d.nblocks = nblocks_;
  const std::uint64_t slots = len_ / nblocks_;
  d.lba = start_ + rng_.Uniform(slots) * nblocks_;
  return d;
}

StridedPattern::StridedPattern(Lba start, std::uint64_t len,
                               std::uint64_t stride, bool is_write)
    : start_(start), len_(len), stride_(stride), is_write_(is_write) {}

IoDesc StridedPattern::Next() {
  IoDesc d;
  d.is_write = is_write_;
  d.lba = start_ + pos_;
  pos_ = (pos_ + stride_) % len_;
  return d;
}

ZipfPattern::ZipfPattern(Lba start, std::uint64_t len, double theta,
                         bool is_write, std::uint64_t seed)
    : start_(start), is_write_(is_write), zipf_(len, theta, seed) {}

IoDesc ZipfPattern::Next() {
  IoDesc d;
  d.is_write = is_write_;
  d.lba = start_ + zipf_.Next();
  return d;
}

MixedPattern::MixedPattern(std::unique_ptr<Pattern> reads,
                           std::unique_ptr<Pattern> writes,
                           double write_fraction, std::uint64_t seed)
    : reads_(std::move(reads)),
      writes_(std::move(writes)),
      write_fraction_(write_fraction),
      rng_(seed) {}

IoDesc MixedPattern::Next() {
  if (rng_.Bernoulli(write_fraction_)) {
    IoDesc d = writes_->Next();
    d.is_write = true;
    return d;
  }
  IoDesc d = reads_->Next();
  d.is_write = false;
  return d;
}

RunResult RunClosedLoop(sim::Simulator* sim,
                        blocklayer::BlockDevice* device, Pattern* pattern,
                        std::uint64_t ops, std::uint32_t queue_depth) {
  struct State {
    RunResult result;
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    SimTime start;
  };
  auto state = std::make_shared<State>();
  state->start = sim->Now();

  // Self-referential issue loop: each completion refills the queue.
  auto issue_one = std::make_shared<std::function<void()>>();
  *issue_one = [sim, device, pattern, ops, state, issue_one]() {
    if (state->issued >= ops) return;
    const std::uint64_t index = state->issued++;
    const IoDesc d = pattern->Next();
    blocklayer::IoRequest req;
    req.op = d.is_write ? blocklayer::IoOp::kWrite : blocklayer::IoOp::kRead;
    req.lba = d.lba;
    req.nblocks = d.nblocks;
    if (d.is_write) {
      req.tokens.reserve(d.nblocks);
      for (std::uint32_t b = 0; b < d.nblocks; ++b) {
        // Deterministic content stamp: integrity checks recompute it.
        req.tokens.push_back((d.lba + b) * 1000003ull + index + 1);
      }
    }
    const SimTime submit_time = sim->Now();
    const std::uint32_t nblocks = d.nblocks;
    req.on_complete = [sim, state, submit_time, nblocks, issue_one](
                          const blocklayer::IoResult& r) {
      ++state->completed;
      state->result.blocks += nblocks;
      if (!r.status.ok()) ++state->result.errors;
      state->result.latency.Record(sim->Now() - submit_time);
      (*issue_one)();
    };
    device->Submit(std::move(req));
  };

  for (std::uint32_t q = 0; q < queue_depth; ++q) (*issue_one)();
  sim->RunUntilPredicate(
      [state, ops]() { return state->completed >= ops; });

  state->result.ops = state->completed;
  state->result.elapsed_ns = sim->Now() - state->start;
  RunResult out = std::move(state->result);
  // Break the issue_one self-reference cycle so the closure releases.
  *issue_one = []() {};
  return out;
}

}  // namespace postblock::workload
