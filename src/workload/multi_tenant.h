#ifndef POSTBLOCK_WORKLOAD_MULTI_TENANT_H_
#define POSTBLOCK_WORKLOAD_MULTI_TENANT_H_

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "common/types.h"
#include "sim/simulator.h"
#include "vbd/frontend.h"
#include "workload/patterns.h"

namespace postblock::workload {

/// One tenant's role in a multi-tenant mix: which Frontend it drives,
/// with what access pattern, at what closed-loop depth.
struct TenantLoad {
  vbd::Frontend* device = nullptr;
  Pattern* pattern = nullptr;  // owned by the caller; one per tenant
  /// IOs to complete. 0 = background load: issues continuously and is
  /// stopped once every bounded tenant has finished (the aggressor in
  /// a noisy-neighbor run).
  std::uint64_t ops = 0;
  std::uint32_t queue_depth = 1;
  /// Think time between a completion and the replacement issue
  /// (0 = immediate, a saturating closed loop).
  SimTime think_ns = 0;
};

struct TenantRunResult {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  std::uint64_t blocks = 0;
  Histogram read_latency;   // per-request ns, incl. p999
  Histogram write_latency;
};

struct MixResult {
  SimTime elapsed_ns = 0;
  /// Order-sensitive FNV-1a over every completion's (tenant index,
  /// sim timestamp, ok bit) — two runs of the same mix must produce
  /// the same digest (the run-twice determinism check).
  std::uint64_t digest = 0;
  std::vector<TenantRunResult> tenants;
};

/// Drives every tenant's closed loop concurrently in one simulator run
/// — the noisy-neighbor scenario end to end: bounded tenants run to
/// their op count, unbounded (ops == 0) tenants keep the device busy
/// until every bounded tenant finishes, then all in-flight IO drains.
/// Write tokens are the same deterministic (lba, op-index) stamps as
/// RunClosedLoop, so integrity checks recompute them per tenant.
MixResult RunMultiTenantMix(sim::Simulator* sim,
                            std::vector<TenantLoad> loads);

}  // namespace postblock::workload

#endif  // POSTBLOCK_WORKLOAD_MULTI_TENANT_H_
