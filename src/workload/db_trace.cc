#include "workload/db_trace.h"

namespace postblock::workload {

DbTrace::DbTrace(const DbTraceConfig& config)
    : config_(config),
      keys_(config.key_space, config.zipf_theta, config.seed),
      rng_(config.seed ^ 0x5eed) {}

KvOp DbTrace::Next() {
  KvOp op;
  op.key = keys_.Next();
  const double draw = rng_.NextDouble();
  if (draw < config_.delete_fraction) {
    op.kind = KvOp::Kind::kDelete;
  } else if (draw < config_.delete_fraction + config_.put_fraction) {
    op.kind = KvOp::Kind::kPut;
    op.value = next_value_++;
  } else {
    op.kind = KvOp::Kind::kGet;
  }
  return op;
}

std::vector<KvOp> DbTrace::Take(std::size_t n) {
  std::vector<KvOp> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(Next());
  return out;
}

}  // namespace postblock::workload
