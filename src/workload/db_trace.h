#ifndef POSTBLOCK_WORKLOAD_DB_TRACE_H_
#define POSTBLOCK_WORKLOAD_DB_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "workload/zipf.h"

namespace postblock::workload {

/// One logical key-value operation for driving db::StorageManager.
struct KvOp {
  enum class Kind { kGet, kPut, kDelete };
  Kind kind = Kind::kGet;
  std::uint64_t key = 0;
  std::uint64_t value = 0;
};

/// OLTP-ish trace generator: zipf-skewed keys, configurable update
/// fraction — a stand-in for the commit-heavy database workloads whose
/// log writes the paper wants routed to PCM (E7).
struct DbTraceConfig {
  std::uint64_t key_space = 100'000;
  double zipf_theta = 0.9;
  double put_fraction = 0.5;
  double delete_fraction = 0.02;
  std::uint64_t seed = 23;
};

class DbTrace {
 public:
  explicit DbTrace(const DbTraceConfig& config);

  KvOp Next();
  std::vector<KvOp> Take(std::size_t n);

 private:
  DbTraceConfig config_;
  ZipfGenerator keys_;
  Rng rng_;
  std::uint64_t next_value_ = 1;
};

}  // namespace postblock::workload

#endif  // POSTBLOCK_WORKLOAD_DB_TRACE_H_
