#ifndef POSTBLOCK_PCM_PCM_DEVICE_H_
#define POSTBLOCK_PCM_PCM_DEVICE_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/types.h"
#include "metrics/metrics.h"
#include "sim/resource.h"
#include "sim/simulator.h"

namespace postblock::pcm {

/// Phase-change memory timing/geometry. Circa-2012 figures: reads near
/// DRAM, writes several times slower; byte-addressable; in-place update
/// (no erase); finite but large per-line endurance.
struct PcmConfig {
  std::uint64_t capacity_bytes = 64 * kMiB;
  std::uint32_t line_bytes = 64;          // access granularity on the bus
  SimTime read_ns_per_line = 100;
  SimTime write_ns_per_line = 500;
  std::uint32_t banks = 4;                // concurrent line accesses
  std::uint64_t endurance_writes = 100'000'000;  // per line (C4 analogue)
};

/// PCM plugged on the memory bus (the paper's Section 3 principle 1
/// target for synchronous persistence). Access is modeled as occupying
/// one of `banks` concurrent units for the per-line latency — there is
/// no block indirection, no erase, no garbage collection.
class PcmDevice {
 public:
  PcmDevice(sim::Simulator* sim, const PcmConfig& config);

  PcmDevice(const PcmDevice&) = delete;
  PcmDevice& operator=(const PcmDevice&) = delete;

  const PcmConfig& config() const { return config_; }

  /// Persists `data` at byte offset `addr`. Completion fires after the
  /// store reaches the device (write-through; no volatile cache).
  void Write(std::uint64_t addr, std::vector<std::uint8_t> data,
             std::function<void(Status)> on_done);

  /// Reads `len` bytes from `addr`.
  void Read(std::uint64_t addr, std::uint64_t len,
            std::function<void(StatusOr<std::vector<std::uint8_t>>)> on_done);

  /// Synchronous state inspection for tests (no timing).
  StatusOr<std::vector<std::uint8_t>> Peek(std::uint64_t addr,
                                           std::uint64_t len) const;

  /// Latency a single isolated access of `len` bytes would take.
  SimTime ReadLatency(std::uint64_t len) const;
  SimTime WriteLatency(std::uint64_t len) const;

  /// Max per-line write count (wear; the paper notes PCM-based SSDs
  /// still need wear management).
  std::uint64_t MaxLineWear() const;

  /// Simulates power loss: contents persist (it's PCM) but in-flight
  /// stores/loads are dropped — their callbacks never fire and a torn
  /// store leaves the old bytes.
  void PowerCycle() { ++epoch_; }

  const Counters& counters() const { return counters_; }
  sim::Resource* bus() { return &bus_; }

  /// Registers this device's time-series streams (polled-only — the
  /// access path stays untouched). Call once per registry.
  void RegisterMetrics(metrics::MetricRegistry* m);

 private:
  std::uint64_t LinesFor(std::uint64_t addr, std::uint64_t len) const;

  sim::Simulator* sim_;
  PcmConfig config_;
  std::vector<std::uint8_t> bytes_;
  std::vector<std::uint32_t> line_wear_;
  sim::Resource bus_;
  std::uint64_t epoch_ = 0;
  Counters counters_;
};

}  // namespace postblock::pcm

#endif  // POSTBLOCK_PCM_PCM_DEVICE_H_
