#include "pcm/pcm_device.h"

#include <algorithm>
#include <cstring>

namespace postblock::pcm {

PcmDevice::PcmDevice(sim::Simulator* sim, const PcmConfig& config)
    : sim_(sim),
      config_(config),
      bytes_(config.capacity_bytes, 0),
      line_wear_((config.capacity_bytes + config.line_bytes - 1) /
                     config.line_bytes,
                 0),
      bus_(sim, "pcm-bus", static_cast<int>(config.banks)) {}

std::uint64_t PcmDevice::LinesFor(std::uint64_t addr,
                                  std::uint64_t len) const {
  if (len == 0) return 0;
  const std::uint64_t first = addr / config_.line_bytes;
  const std::uint64_t last = (addr + len - 1) / config_.line_bytes;
  return last - first + 1;
}

SimTime PcmDevice::ReadLatency(std::uint64_t len) const {
  const std::uint64_t lines = std::max<std::uint64_t>(1, LinesFor(0, len));
  return lines * config_.read_ns_per_line;
}

SimTime PcmDevice::WriteLatency(std::uint64_t len) const {
  const std::uint64_t lines = std::max<std::uint64_t>(1, LinesFor(0, len));
  return lines * config_.write_ns_per_line;
}

void PcmDevice::Write(std::uint64_t addr, std::vector<std::uint8_t> data,
                      std::function<void(Status)> on_done) {
  if (addr + data.size() > config_.capacity_bytes) {
    on_done(Status::OutOfRange("pcm write beyond capacity"));
    return;
  }
  const SimTime latency = WriteLatency(data.size());
  const std::uint64_t first_line = addr / config_.line_bytes;
  const std::uint64_t lines = LinesFor(addr, data.size());
  counters_.Increment("writes");
  counters_.Add("lines_written", lines);
  const std::uint64_t epoch = epoch_;
  bus_.Acquire([this, addr, data = std::move(data), latency, first_line,
                lines, epoch, on_done = std::move(on_done)]() mutable {
    sim_->Schedule(latency, [this, addr, data = std::move(data), first_line,
                             lines, epoch,
                             on_done = std::move(on_done)]() {
      bus_.Release();
      if (epoch != epoch_) return;  // power cut mid-store: bytes lost
      std::memcpy(bytes_.data() + addr, data.data(), data.size());
      for (std::uint64_t l = 0; l < lines; ++l) {
        ++line_wear_[first_line + l];
      }
      on_done(Status::Ok());
    });
  });
}

void PcmDevice::Read(
    std::uint64_t addr, std::uint64_t len,
    std::function<void(StatusOr<std::vector<std::uint8_t>>)> on_done) {
  if (addr + len > config_.capacity_bytes) {
    on_done(Status::OutOfRange("pcm read beyond capacity"));
    return;
  }
  const SimTime latency = ReadLatency(len);
  counters_.Increment("reads");
  const std::uint64_t epoch = epoch_;
  bus_.Acquire([this, addr, len, latency, epoch,
                on_done = std::move(on_done)]() {
    sim_->Schedule(latency, [this, addr, len, epoch, on_done]() {
      bus_.Release();
      if (epoch != epoch_) return;  // power cut: caller is gone
      std::vector<std::uint8_t> out(bytes_.begin() + addr,
                                    bytes_.begin() + addr + len);
      on_done(std::move(out));
    });
  });
}

StatusOr<std::vector<std::uint8_t>> PcmDevice::Peek(std::uint64_t addr,
                                                    std::uint64_t len) const {
  if (addr + len > config_.capacity_bytes) {
    return Status::OutOfRange("pcm peek beyond capacity");
  }
  return std::vector<std::uint8_t>(bytes_.begin() + addr,
                                   bytes_.begin() + addr + len);
}

std::uint64_t PcmDevice::MaxLineWear() const {
  std::uint32_t m = 0;
  for (auto w : line_wear_) m = std::max(m, w);
  return m;
}

void PcmDevice::RegisterMetrics(metrics::MetricRegistry* m) {
  m->AddPolledCounter("pcm.reads",
                      [this] { return counters_.Get("reads"); });
  m->AddPolledCounter("pcm.writes",
                      [this] { return counters_.Get("writes"); });
  m->AddPolledCounter("pcm.lines_written",
                      [this] { return counters_.Get("lines_written"); });
  m->AddPolledCounter("pcm.bus_busy_ns",
                      [this] { return bus_.busy_ns(); });
  m->AddGauge("pcm.max_line_wear",
              [this] { return static_cast<double>(MaxLineWear()); });
}

}  // namespace postblock::pcm
